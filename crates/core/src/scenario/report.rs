//! Result types produced by the [`ScenarioRunner`](super::ScenarioRunner): per-run
//! records, typed multi-seed aggregation into [`Digest`]s, and baseline comparison
//! ([`ScenarioReport::compare`]).

use super::probe::ProbeSeries;
use super::workload::WorkloadReport;
use sdn_metrics::{Digest, MetricKey, Polarity};
use std::collections::BTreeSet;

/// One fault event as actually injected during a run (selectors resolved to concrete
/// victims).
#[derive(Clone, Debug, PartialEq)]
pub struct InjectedFault {
    /// Offset from the bootstrap instant, in simulated seconds.
    pub at_s: f64,
    /// Human-readable description of the resolved event, e.g. `"fail-stop controller 1"`.
    pub description: String,
}

/// Convergence measurement for one fault batch: how long the network took to return to
/// a legitimate state after the batch fired.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveryRecord {
    /// Offset of the fault batch from the bootstrap instant, in simulated seconds.
    pub fault_at_s: f64,
    /// Time from the batch to the next legitimate state, in simulated seconds — `None`
    /// when the scenario timeout expired (or another batch fired) first.
    pub recovered_in_s: Option<f64>,
}

/// Everything observed during one seeded execution of a scenario.
///
/// `PartialEq` is part of the public contract: the parallel runner's determinism test
/// compares whole reports for bit-identity across worker-thread counts.
#[derive(Debug, Default, PartialEq)]
pub struct RunReport {
    /// The harness seed this run used.
    pub seed: u64,
    /// Time from the initial (empty-configuration) state to the first legitimate state,
    /// in simulated seconds — `None` when the bootstrap timed out.
    pub bootstrap_s: Option<f64>,
    /// One record per fault batch, in schedule order.
    pub recoveries: Vec<RecoveryRecord>,
    /// The concrete faults injected (selectors resolved).
    pub injected: Vec<InjectedFault>,
    /// Sampled probe time series.
    pub probes: Vec<ProbeSeries>,
    /// Reports of the attached workloads, in attachment order.
    pub workloads: Vec<WorkloadReport>,
    /// End-of-run summary statistics, typed by [`MetricKey`], in attachment order.
    pub summaries: Vec<(MetricKey, f64)>,
    /// Whether the network was legitimate when the run ended.
    pub final_legitimate: bool,
    /// Total rules installed across all live switches at the end of the run.
    pub total_rules: usize,
    /// Largest per-switch rule count at the end of the run.
    pub max_rules_per_switch: usize,
    /// Total control-plane messages sent over the whole run.
    pub messages_sent: u64,
    /// Total simulator events processed over the whole run (deliveries, timers,
    /// observation refreshes) — the numerator of events-per-second throughput.
    pub events_processed: u64,
    /// Simulated clock at the end of the run, in seconds.
    pub sim_end_s: f64,
}

impl RunReport {
    /// The value of the end-of-run summary registered under `key`, if any.
    pub fn metric(&self, key: &MetricKey) -> Option<f64> {
        self.summaries
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
    }

    /// The first recovery time of the run, if the first fault batch recovered.
    pub fn first_recovery_s(&self) -> Option<f64> {
        self.recoveries.first().and_then(|r| r.recovered_in_s)
    }

    /// The report of the workload with the given label.
    pub fn workload(&self, label: &str) -> Option<&WorkloadReport> {
        self.workloads.iter().find(|w| w.label == label)
    }

    /// The sampled series of the probe registered under `key`.
    pub fn probe(&self, key: &MetricKey) -> Option<&ProbeSeries> {
        self.probes.iter().find(|p| &p.key == key)
    }
}

/// The aggregated result of running a scenario over all its seeds.
#[derive(Debug, Default, PartialEq)]
pub struct ScenarioReport {
    /// The scenario name.
    pub scenario: String,
    /// The topology name the scenario ran on.
    pub network: String,
    /// One report per seed, in seed order.
    pub runs: Vec<RunReport>,
}

impl ScenarioReport {
    /// Bootstrap times across runs as a [`Digest`] (runs that timed out contribute no
    /// sample).
    pub fn bootstrap_digest(&self) -> Digest {
        let mut digest = Digest::default();
        for run in &self.runs {
            if let Some(s) = run.bootstrap_s {
                digest.record(s);
            }
        }
        digest
    }

    /// Recovery times of *every* fault batch across runs as a [`Digest`] (batches that
    /// never recovered contribute no sample).
    pub fn recovery_digest(&self) -> Digest {
        let mut digest = Digest::default();
        for run in &self.runs {
            for recovery in &run.recoveries {
                if let Some(s) = recovery.recovered_in_s {
                    digest.record(s);
                }
            }
        }
        digest
    }

    /// First-batch recovery times across runs as a [`Digest`] — the quantity the
    /// paper's single-fault recovery figures plot.
    pub fn first_recovery_digest(&self) -> Digest {
        let mut digest = Digest::default();
        for run in &self.runs {
            if let Some(s) = run.first_recovery_s() {
                digest.record(s);
            }
        }
        digest
    }

    /// Values of the end-of-run summary registered under `key` across runs, as a
    /// [`Digest`].
    pub fn metric_digest(&self, key: &MetricKey) -> Digest {
        let mut digest = Digest::default();
        for run in &self.runs {
            if let Some(v) = run.metric(key) {
                digest.record(v);
            }
        }
        digest
    }

    /// Every metric this report can aggregate: bootstrap, recovery (when any run has
    /// fault batches), and all registered summary keys, with their digests.
    pub fn metric_digests(&self) -> Vec<(MetricKey, Digest)> {
        let mut out = vec![(MetricKey::BOOTSTRAP_TIME, self.bootstrap_digest())];
        if self.runs.iter().any(|r| !r.recoveries.is_empty()) {
            out.push((MetricKey::RECOVERY_TIME, self.recovery_digest()));
        }
        let keys: BTreeSet<&MetricKey> = self
            .runs
            .iter()
            .flat_map(|r| r.summaries.iter().map(|(k, _)| k))
            .collect();
        for key in keys {
            out.push((key.clone(), self.metric_digest(key)));
        }
        out
    }

    /// Compares this report against a baseline report of the same scenario, metric by
    /// metric, producing the per-key mean deltas a regression gate consumes.
    ///
    /// # Example
    ///
    /// ```
    /// use renaissance::scenario::Scenario;
    /// use sdn_netsim::SimDuration;
    ///
    /// let scenario = Scenario::builder("compare-demo")
    ///     .network("B4")
    ///     .task_delay(SimDuration::from_millis(200))
    ///     .build();
    /// let baseline = scenario.run();
    /// let current = scenario.run();
    /// // Identical seeds -> identical runs -> no change against the baseline.
    /// let delta = current.compare(&baseline);
    /// assert!(delta.regressions(5.0).is_empty());
    /// let bootstrap = &delta.deltas[0];
    /// assert_eq!(bootstrap.key.path(), "scenario/bootstrap_s");
    /// assert_eq!(bootstrap.change_pct, 0.0);
    /// ```
    pub fn compare(&self, baseline: &ScenarioReport) -> ReportDelta {
        let current = self.metric_digests();
        let base: Vec<(MetricKey, Digest)> = baseline.metric_digests();
        let mut deltas = Vec::new();
        for (key, digest) in current {
            let Some((_, base_digest)) = base.iter().find(|(k, _)| k == &key) else {
                continue;
            };
            deltas.push(MetricDelta::new(key, base_digest.mean(), digest.mean()));
        }
        ReportDelta {
            scenario: self.scenario.clone(),
            network: self.network.clone(),
            deltas,
        }
    }

    /// Returns `true` when every run bootstrapped and every fault batch recovered.
    ///
    /// Note that [`RunReport::final_legitimate`] is deliberately not part of this
    /// check: the implementation's controllers re-discover the topology every round,
    /// so the *instantaneous* legitimacy predicate can dip mid-round even in a
    /// fault-free steady state. Convergence here means each disruption was followed by
    /// a legitimate state, exactly what the paper's recovery measurements report.
    pub fn all_converged(&self) -> bool {
        self.runs.iter().all(|run| {
            run.bootstrap_s.is_some() && run.recoveries.iter().all(|r| r.recovered_in_s.is_some())
        })
    }
}

/// The change of one metric between a baseline report and a current report.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricDelta {
    /// The metric.
    pub key: MetricKey,
    /// Mean over the baseline report's runs.
    pub baseline_mean: f64,
    /// Mean over the current report's runs.
    pub current_mean: f64,
    /// Relative change in percent, signed (`+` means the value grew). Infinite when
    /// the baseline mean is zero and the current one is not.
    pub change_pct: f64,
}

impl MetricDelta {
    fn new(key: MetricKey, baseline_mean: f64, current_mean: f64) -> Self {
        let change_pct = if baseline_mean != 0.0 {
            (current_mean - baseline_mean) / baseline_mean * 100.0
        } else if current_mean == 0.0 {
            0.0
        } else {
            f64::INFINITY * current_mean.signum()
        };
        MetricDelta {
            key,
            baseline_mean,
            current_mean,
            change_pct,
        }
    }

    /// Whether this delta is a regression at the given gate: the metric moved in its
    /// worse direction (per [`MetricKey::polarity`]) by more than `gate_pct` percent.
    pub fn is_regression(&self, gate_pct: f64) -> bool {
        match self.key.polarity() {
            Polarity::LowerIsBetter => self.change_pct > gate_pct,
            Polarity::HigherIsBetter => self.change_pct < -gate_pct,
            Polarity::Neutral => false,
        }
    }
}

/// The metric-by-metric comparison of a scenario report against a baseline, produced
/// by [`ScenarioReport::compare`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ReportDelta {
    /// The (current) scenario name.
    pub scenario: String,
    /// The topology name.
    pub network: String,
    /// One delta per metric present in both reports.
    pub deltas: Vec<MetricDelta>,
}

impl ReportDelta {
    /// The deltas that regressed past the gate (each metric's
    /// [`Polarity`](sdn_metrics::Polarity) decides which direction is worse).
    pub fn regressions(&self, gate_pct: f64) -> Vec<&MetricDelta> {
        self.deltas
            .iter()
            .filter(|d| d.is_regression(gate_pct))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdn_metrics::{Namespace, Polarity, Unit};

    #[test]
    fn report_aggregation_skips_failed_runs() {
        let report = ScenarioReport {
            scenario: "t".into(),
            network: "B4".into(),
            runs: vec![
                RunReport {
                    bootstrap_s: Some(1.0),
                    recoveries: vec![RecoveryRecord {
                        fault_at_s: 0.0,
                        recovered_in_s: Some(2.0),
                    }],
                    ..RunReport::default()
                },
                RunReport {
                    bootstrap_s: None,
                    ..RunReport::default()
                },
            ],
        };
        let bootstrap = report.bootstrap_digest();
        assert_eq!(bootstrap.len(), 1);
        assert_eq!(bootstrap.mean(), 1.0);
        assert_eq!(report.recovery_digest().mean(), 2.0);
        assert_eq!(report.first_recovery_digest().len(), 1);
        assert!(!report.all_converged());
    }

    #[test]
    fn run_report_lookups() {
        let key = MetricKey::custom(Namespace::Scenario, "overhead");
        let run = RunReport {
            summaries: vec![(key.clone(), 3.5)],
            ..RunReport::default()
        };
        assert_eq!(run.metric(&key), Some(3.5));
        assert_eq!(
            run.metric(&MetricKey::custom(Namespace::Scenario, "missing")),
            None
        );
        assert_eq!(run.first_recovery_s(), None);
        assert!(run.workload("iperf").is_none());
        assert!(run.probe(&MetricKey::LEGITIMACY).is_none());
    }

    fn report_with(bootstrap: f64, summary: Option<(MetricKey, f64)>) -> ScenarioReport {
        ScenarioReport {
            scenario: "t".into(),
            network: "B4".into(),
            runs: vec![RunReport {
                bootstrap_s: Some(bootstrap),
                summaries: summary.into_iter().collect(),
                ..RunReport::default()
            }],
        }
    }

    #[test]
    fn compare_flags_regressions_by_polarity() {
        let throughput = MetricKey::named(
            Namespace::Workload,
            "goodput",
            Unit::MbitPerSec,
            Polarity::HigherIsBetter,
        );
        let baseline = report_with(10.0, Some((throughput.clone(), 100.0)));
        // Bootstrap 30% slower, goodput 50% lower: both directions are regressions.
        let current = report_with(13.0, Some((throughput.clone(), 50.0)));
        let delta = current.compare(&baseline);
        assert_eq!(delta.deltas.len(), 2);
        let regressions = delta.regressions(25.0);
        assert_eq!(regressions.len(), 2);
        assert!((regressions[0].change_pct - 30.0).abs() < 1e-9);
        assert!((regressions[1].change_pct + 50.0).abs() < 1e-9);
        // A 40% gate only catches the goodput drop.
        assert_eq!(delta.regressions(40.0).len(), 1);
        // Improvements are never regressions.
        let improved = report_with(5.0, Some((throughput, 200.0)));
        assert!(improved.compare(&baseline).regressions(0.5).is_empty());
    }

    #[test]
    fn compare_handles_zero_baselines_and_neutral_metrics() {
        let rules = MetricKey::custom(Namespace::Probe, "rules");
        let baseline = report_with(0.0, Some((rules.clone(), 0.0)));
        let current = report_with(1.0, Some((rules, 500.0)));
        let delta = current.compare(&baseline);
        // Zero baseline -> infinite growth, still caught by any finite gate...
        assert!(delta.deltas[0].change_pct.is_infinite());
        let regressions = delta.regressions(25.0);
        assert_eq!(regressions.len(), 1);
        // ...but the neutral-polarity rules metric is never a regression.
        assert_eq!(regressions[0].key, MetricKey::BOOTSTRAP_TIME);
    }
}
