//! Result types produced by the [`ScenarioRunner`](super::ScenarioRunner): per-run
//! records plus multi-seed aggregation helpers.

use super::probe::ProbeSeries;
use super::workload::WorkloadReport;

/// A collection of repeated measurements (the numbers behind one violin of the paper's
/// plots), with the summary statistics the experiment binaries print.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Samples {
    /// Individual samples, in seconds of simulated time (or whatever unit the caller
    /// pushed).
    pub samples: Vec<f64>,
}

impl Samples {
    /// Adds one sample.
    pub fn push(&mut self, value: f64) {
        self.samples.push(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` when no samples were collected.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Median of the samples (0 when empty).
    pub fn median(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sorted[sorted.len() / 2]
    }

    /// Minimum sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum sample (0 when empty).
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }
}

/// One fault event as actually injected during a run (selectors resolved to concrete
/// victims).
#[derive(Clone, Debug, PartialEq)]
pub struct InjectedFault {
    /// Offset from the bootstrap instant, in simulated seconds.
    pub at_s: f64,
    /// Human-readable description of the resolved event, e.g. `"fail-stop controller 1"`.
    pub description: String,
}

/// Convergence measurement for one fault batch: how long the network took to return to
/// a legitimate state after the batch fired.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveryRecord {
    /// Offset of the fault batch from the bootstrap instant, in simulated seconds.
    pub fault_at_s: f64,
    /// Time from the batch to the next legitimate state, in simulated seconds — `None`
    /// when the scenario timeout expired (or another batch fired) first.
    pub recovered_in_s: Option<f64>,
}

/// Everything observed during one seeded execution of a scenario.
///
/// `PartialEq` is part of the public contract: the parallel runner's determinism test
/// compares whole reports for bit-identity across worker-thread counts.
#[derive(Debug, Default, PartialEq)]
pub struct RunReport {
    /// The harness seed this run used.
    pub seed: u64,
    /// Time from the initial (empty-configuration) state to the first legitimate state,
    /// in simulated seconds — `None` when the bootstrap timed out.
    pub bootstrap_s: Option<f64>,
    /// One record per fault batch, in schedule order.
    pub recoveries: Vec<RecoveryRecord>,
    /// The concrete faults injected (selectors resolved).
    pub injected: Vec<InjectedFault>,
    /// Sampled probe time series.
    pub probes: Vec<ProbeSeries>,
    /// Reports of the attached workloads, in attachment order.
    pub workloads: Vec<WorkloadReport>,
    /// End-of-run summary statistics (`name`, value), in attachment order.
    pub summaries: Vec<(String, f64)>,
    /// Whether the network was legitimate when the run ended.
    pub final_legitimate: bool,
    /// Total rules installed across all live switches at the end of the run.
    pub total_rules: usize,
    /// Largest per-switch rule count at the end of the run.
    pub max_rules_per_switch: usize,
    /// Total control-plane messages sent over the whole run.
    pub messages_sent: u64,
    /// Simulated clock at the end of the run, in seconds.
    pub sim_end_s: f64,
}

impl RunReport {
    /// The value of the named end-of-run summary, if it was registered.
    pub fn summary(&self, name: &str) -> Option<f64> {
        self.summaries
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The first recovery time of the run, if the first fault batch recovered.
    pub fn first_recovery_s(&self) -> Option<f64> {
        self.recoveries.first().and_then(|r| r.recovered_in_s)
    }

    /// The report of the workload with the given label.
    pub fn workload(&self, label: &str) -> Option<&WorkloadReport> {
        self.workloads.iter().find(|w| w.label == label)
    }

    /// The sampled series of the probe with the given name.
    pub fn probe(&self, name: &str) -> Option<&ProbeSeries> {
        self.probes.iter().find(|p| p.name == name)
    }
}

/// The aggregated result of running a scenario over all its seeds.
#[derive(Debug, Default, PartialEq)]
pub struct ScenarioReport {
    /// The scenario name.
    pub scenario: String,
    /// The topology name the scenario ran on.
    pub network: String,
    /// One report per seed, in seed order.
    pub runs: Vec<RunReport>,
}

impl ScenarioReport {
    /// Bootstrap times across runs (runs that timed out contribute no sample).
    pub fn bootstrap_samples(&self) -> Samples {
        let mut samples = Samples::default();
        for run in &self.runs {
            if let Some(s) = run.bootstrap_s {
                samples.push(s);
            }
        }
        samples
    }

    /// First-recovery times across runs (runs that never recovered contribute no
    /// sample).
    pub fn recovery_samples(&self) -> Samples {
        let mut samples = Samples::default();
        for run in &self.runs {
            if let Some(s) = run.first_recovery_s() {
                samples.push(s);
            }
        }
        samples
    }

    /// Values of the named end-of-run summary across runs.
    pub fn summary_samples(&self, name: &str) -> Samples {
        let mut samples = Samples::default();
        for run in &self.runs {
            if let Some(v) = run.summary(name) {
                samples.push(v);
            }
        }
        samples
    }

    /// Returns `true` when every run bootstrapped and every fault batch recovered.
    ///
    /// Note that [`RunReport::final_legitimate`] is deliberately not part of this
    /// check: the implementation's controllers re-discover the topology every round,
    /// so the *instantaneous* legitimacy predicate can dip mid-round even in a
    /// fault-free steady state. Convergence here means each disruption was followed by
    /// a legitimate state, exactly what the paper's recovery measurements report.
    pub fn all_converged(&self) -> bool {
        self.runs.iter().all(|run| {
            run.bootstrap_s.is_some() && run.recoveries.iter().all(|r| r.recovered_in_s.is_some())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_statistics() {
        let mut s = Samples::default();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.median(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert!(s.is_empty());
        s.push(2.0);
        s.push(4.0);
        s.push(9.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.median(), 4.0);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn report_aggregation_skips_failed_runs() {
        let report = ScenarioReport {
            scenario: "t".into(),
            network: "B4".into(),
            runs: vec![
                RunReport {
                    bootstrap_s: Some(1.0),
                    recoveries: vec![RecoveryRecord {
                        fault_at_s: 0.0,
                        recovered_in_s: Some(2.0),
                    }],
                    ..RunReport::default()
                },
                RunReport {
                    bootstrap_s: None,
                    ..RunReport::default()
                },
            ],
        };
        assert_eq!(report.bootstrap_samples().samples, vec![1.0]);
        assert_eq!(report.recovery_samples().samples, vec![2.0]);
        assert!(!report.all_converged());
    }

    #[test]
    fn run_report_lookups() {
        let run = RunReport {
            summaries: vec![("overhead".into(), 3.5)],
            ..RunReport::default()
        };
        assert_eq!(run.summary("overhead"), Some(3.5));
        assert_eq!(run.summary("missing"), None);
        assert_eq!(run.first_recovery_s(), None);
        assert!(run.workload("iperf").is_none());
        assert!(run.probe("legitimacy").is_none());
    }
}
