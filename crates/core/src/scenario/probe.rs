//! Pluggable observables sampled on a schedule while a scenario runs.
//!
//! A [`Probe`] turns the network state into one `f64` per sample; the runner collects
//! the values into a [`ProbeSeries`] per run. The built-in probes cover the quantities
//! the paper's evaluation plots (legitimacy, rule counts, message totals); anything
//! else can be expressed with [`Probe::custom`].

use crate::harness::SdnNetwork;

/// A named observable sampled periodically over a running [`SdnNetwork`].
#[derive(Clone)]
pub struct Probe {
    name: String,
    kind: ProbeKind,
}

#[derive(Clone, Copy)]
enum ProbeKind {
    /// 1.0 when the legitimacy predicate (Definition 1) holds, else 0.0.
    Legitimacy,
    /// Total rules installed across all live switches.
    TotalRules,
    /// Largest rule count of any single live switch.
    MaxRulesPerSwitch,
    /// Total control-plane messages sent since the start of the run.
    MessagesSent,
    /// A caller-provided pure observation function.
    Custom(fn(&SdnNetwork) -> f64),
}

impl std::fmt::Debug for Probe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Probe").field("name", &self.name).finish()
    }
}

impl Probe {
    /// Samples 1.0 while the network satisfies the legitimacy predicate, 0.0 otherwise.
    pub fn legitimacy() -> Self {
        Probe {
            name: "legitimacy".to_string(),
            kind: ProbeKind::Legitimacy,
        }
    }

    /// Samples the total number of rules installed across all live switches (the
    /// memory-footprint observable of Lemma 1).
    pub fn total_rules() -> Self {
        Probe {
            name: "total_rules".to_string(),
            kind: ProbeKind::TotalRules,
        }
    }

    /// Samples the largest rule count of any single live switch.
    pub fn max_rules_per_switch() -> Self {
        Probe {
            name: "max_rules_per_switch".to_string(),
            kind: ProbeKind::MaxRulesPerSwitch,
        }
    }

    /// Samples the cumulative number of control-plane messages sent.
    pub fn messages_sent() -> Self {
        Probe {
            name: "messages_sent".to_string(),
            kind: ProbeKind::MessagesSent,
        }
    }

    /// A probe evaluating an arbitrary pure function of the network state.
    ///
    /// The function pointer (rather than a closure) keeps scenarios freely reusable
    /// across repeated runs.
    pub fn custom(name: impl Into<String>, f: fn(&SdnNetwork) -> f64) -> Self {
        Probe {
            name: name.into(),
            kind: ProbeKind::Custom(f),
        }
    }

    /// This probe's name (the key of its series in the run report).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Evaluates the probe against the current network state.
    pub fn sample(&self, net: &SdnNetwork) -> f64 {
        match self.kind {
            ProbeKind::Legitimacy => {
                if net.is_legitimate() {
                    1.0
                } else {
                    0.0
                }
            }
            ProbeKind::TotalRules => net.total_rules() as f64,
            ProbeKind::MaxRulesPerSwitch => net.max_rules_per_switch() as f64,
            ProbeKind::MessagesSent => net.metrics().total_sent() as f64,
            ProbeKind::Custom(f) => f(net),
        }
    }
}

/// The sampled time series of one probe over one run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProbeSeries {
    /// The probe name.
    pub name: String,
    /// Sample timestamps, in simulated seconds since the start of the run.
    pub times_s: Vec<f64>,
    /// Sampled values, parallel to `times_s`.
    pub values: Vec<f64>,
}

impl ProbeSeries {
    /// Creates an empty series for the given probe name.
    pub fn new(name: impl Into<String>) -> Self {
        ProbeSeries {
            name: name.into(),
            times_s: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Appends one sample.
    pub fn push(&mut self, time_s: f64, value: f64) {
        self.times_s.push(time_s);
        self.values.push(value);
    }

    /// The last sampled value, if any sample was taken.
    pub fn last(&self) -> Option<f64> {
        self.values.last().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ControllerConfig, HarnessConfig};
    use sdn_netsim::SimDuration;
    use sdn_topology::builders;

    #[test]
    fn builtin_probes_sample_sensible_values() {
        let topology = builders::ring(4, 1);
        let net = SdnNetwork::new(
            topology,
            ControllerConfig::for_network(1, 4),
            HarnessConfig::default().with_task_delay(SimDuration::from_millis(100)),
        );
        // Freshly built: not legitimate, no rules, no messages.
        assert_eq!(Probe::legitimacy().sample(&net), 0.0);
        assert_eq!(Probe::total_rules().sample(&net), 0.0);
        assert_eq!(Probe::max_rules_per_switch().sample(&net), 0.0);
        assert_eq!(Probe::messages_sent().sample(&net), 0.0);
        let custom = Probe::custom("live_switches", |n| n.live_switch_ids().len() as f64);
        assert_eq!(custom.name(), "live_switches");
        assert_eq!(custom.sample(&net), 4.0);
    }

    #[test]
    fn series_accumulates() {
        let mut s = ProbeSeries::new("x");
        assert_eq!(s.last(), None);
        s.push(0.0, 1.0);
        s.push(0.5, 2.0);
        assert_eq!(s.times_s, vec![0.0, 0.5]);
        assert_eq!(s.last(), Some(2.0));
    }
}
