//! Pluggable observables sampled on a schedule while a scenario runs.
//!
//! A [`Probe`] turns the network state into one `f64` per sample; the runner collects
//! the values into a [`ProbeSeries`] per run. Each probe is identified by a typed
//! [`MetricKey`] — the built-in probes use the well-known keys
//! ([`MetricKey::LEGITIMACY`], ...); anything else can be expressed with
//! [`Probe::custom`] under its own key.

use crate::harness::SdnNetwork;
use sdn_metrics::{MetricKey, Namespace};

/// An observable sampled periodically over a running [`SdnNetwork`], keyed by a typed
/// [`MetricKey`].
#[derive(Clone)]
pub struct Probe {
    key: MetricKey,
    kind: ProbeKind,
}

#[derive(Clone, Copy)]
enum ProbeKind {
    /// 1.0 when the legitimacy predicate (Definition 1) holds, else 0.0.
    Legitimacy,
    /// Total rules installed across all live switches.
    TotalRules,
    /// Largest rule count of any single live switch.
    MaxRulesPerSwitch,
    /// Total control-plane messages sent since the start of the run.
    MessagesSent,
    /// A caller-provided pure observation function.
    Custom(fn(&SdnNetwork) -> f64),
}

impl std::fmt::Debug for Probe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Probe").field("key", &self.key).finish()
    }
}

impl Probe {
    /// Samples 1.0 while the network satisfies the legitimacy predicate, 0.0 otherwise.
    pub fn legitimacy() -> Self {
        Probe {
            key: MetricKey::LEGITIMACY,
            kind: ProbeKind::Legitimacy,
        }
    }

    /// Samples the total number of rules installed across all live switches (the
    /// memory-footprint observable of Lemma 1).
    pub fn total_rules() -> Self {
        Probe {
            key: MetricKey::TOTAL_RULES,
            kind: ProbeKind::TotalRules,
        }
    }

    /// Samples the largest rule count of any single live switch.
    pub fn max_rules_per_switch() -> Self {
        Probe {
            key: MetricKey::MAX_RULES_PER_SWITCH,
            kind: ProbeKind::MaxRulesPerSwitch,
        }
    }

    /// Samples the cumulative number of control-plane messages sent.
    pub fn messages_sent() -> Self {
        Probe {
            key: MetricKey::MESSAGES_SENT,
            kind: ProbeKind::MessagesSent,
        }
    }

    /// A probe evaluating an arbitrary pure function of the network state, registered
    /// under a typed key. A bare name is accepted for convenience and placed in the
    /// probe namespace.
    ///
    /// The function pointer (rather than a closure) keeps scenarios freely reusable
    /// across repeated runs.
    pub fn custom(key: impl Into<ProbeKeyArg>, f: fn(&SdnNetwork) -> f64) -> Self {
        Probe {
            key: key.into().0,
            kind: ProbeKind::Custom(f),
        }
    }

    /// This probe's typed key (the key of its series in the run report).
    pub fn key(&self) -> &MetricKey {
        &self.key
    }

    /// Evaluates the probe against the current network state.
    pub fn sample(&self, net: &SdnNetwork) -> f64 {
        match self.kind {
            ProbeKind::Legitimacy => {
                if net.is_legitimate() {
                    1.0
                } else {
                    0.0
                }
            }
            ProbeKind::TotalRules => net.total_rules() as f64,
            ProbeKind::MaxRulesPerSwitch => net.max_rules_per_switch() as f64,
            ProbeKind::MessagesSent => net.metrics().total_sent() as f64,
            ProbeKind::Custom(f) => f(net),
        }
    }
}

/// Conversion shim for [`Probe::custom`]: accepts a typed [`MetricKey`] or a bare
/// `&str`/`String` name (placed in the probe namespace).
pub struct ProbeKeyArg(MetricKey);

impl From<MetricKey> for ProbeKeyArg {
    fn from(key: MetricKey) -> Self {
        ProbeKeyArg(key)
    }
}
impl From<&str> for ProbeKeyArg {
    fn from(name: &str) -> Self {
        ProbeKeyArg(MetricKey::custom(Namespace::Probe, name))
    }
}
impl From<String> for ProbeKeyArg {
    fn from(name: String) -> Self {
        ProbeKeyArg(MetricKey::custom(Namespace::Probe, name))
    }
}

/// The sampled time series of one probe over one run.
#[derive(Clone, Debug, PartialEq)]
pub struct ProbeSeries {
    /// The probe's typed key.
    pub key: MetricKey,
    /// Sample timestamps, in simulated seconds since the start of the run.
    pub times_s: Vec<f64>,
    /// Sampled values, parallel to `times_s`.
    pub values: Vec<f64>,
}

impl ProbeSeries {
    /// Creates an empty series for the given probe key.
    pub fn new(key: MetricKey) -> Self {
        ProbeSeries {
            key,
            times_s: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Appends one sample.
    pub fn push(&mut self, time_s: f64, value: f64) {
        self.times_s.push(time_s);
        self.values.push(value);
    }

    /// The last sampled value, if any sample was taken.
    pub fn last(&self) -> Option<f64> {
        self.values.last().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ControllerConfig, HarnessConfig};
    use sdn_netsim::SimDuration;
    use sdn_topology::builders;

    #[test]
    fn builtin_probes_sample_sensible_values() {
        let topology = builders::ring(4, 1);
        let net = SdnNetwork::new(
            topology,
            ControllerConfig::for_network(1, 4),
            HarnessConfig::default().with_task_delay(SimDuration::from_millis(100)),
        );
        // Freshly built: not legitimate, no rules, no messages.
        assert_eq!(Probe::legitimacy().sample(&net), 0.0);
        assert_eq!(Probe::total_rules().sample(&net), 0.0);
        assert_eq!(Probe::max_rules_per_switch().sample(&net), 0.0);
        assert_eq!(Probe::messages_sent().sample(&net), 0.0);
        let custom = Probe::custom("live_switches", |n| n.live_switch_ids().len() as f64);
        assert_eq!(custom.key().path(), "probe/live_switches");
        assert_eq!(custom.sample(&net), 4.0);
        // A fully typed key is accepted too.
        let typed = Probe::custom(MetricKey::custom(Namespace::Scenario, "x"), |_| 0.0);
        assert_eq!(typed.key().path(), "scenario/x");
    }

    #[test]
    fn series_accumulates() {
        let mut s = ProbeSeries::new(MetricKey::custom(Namespace::Probe, "x"));
        assert_eq!(s.last(), None);
        s.push(0.0, 1.0);
        s.push(0.5, 2.0);
        assert_eq!(s.times_s, vec![0.0, 0.5]);
        assert_eq!(s.last(), Some(2.0));
    }
}
