//! Traffic workloads attached to a scenario.
//!
//! A [`Workload`] is started at the bootstrap instant and ticked on a fixed cadence by
//! the [`ScenarioRunner`](super::ScenarioRunner); at the end of its window it produces
//! a [`WorkloadReport`] of named per-tick series. The concrete TCP/iperf workload lives
//! in the `sdn-traffic` crate (which depends on this one); the trait lives here so the
//! scenario runner can drive any traffic model without a dependency cycle.

use crate::harness::SdnNetwork;
use sdn_metrics::Digest;
use sdn_netsim::SimDuration;

/// Context passed to [`Workload::tick`]: which tick this is and how much workload time
/// has elapsed since the workload started.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkloadTick {
    /// 1-based tick index.
    pub index: u32,
    /// Elapsed workload time at this tick (`index * tick_interval`).
    pub elapsed: SimDuration,
}

/// A traffic workload driven tick-by-tick by the scenario runner.
///
/// With a live control plane the runner advances the simulation between ticks, so the
/// workload observes genuine controller repair; with a frozen control plane
/// ([`ControlPlane::Frozen`](super::ControlPlane::Frozen)) the simulator clock stands
/// still and the workload sees only the static data plane — the paper's
/// "without recovery" mode (Figure 16).
pub trait Workload {
    /// Display label of this workload; also the key of its report.
    fn label(&self) -> String;

    /// Total workload window length. The runner calls [`Workload::tick`]
    /// `duration / tick_interval` times.
    fn duration(&self) -> SimDuration;

    /// Cadence at which [`Workload::tick`] is called (default: one simulated second).
    fn tick_interval(&self) -> SimDuration {
        SimDuration::from_secs(1)
    }

    /// Called once at the bootstrap instant, before the first tick — resolve endpoints,
    /// open connections, etc.
    fn start(&mut self, net: &mut SdnNetwork);

    /// Called once per tick, after the simulator has advanced to the tick instant.
    fn tick(&mut self, net: &mut SdnNetwork, tick: WorkloadTick);

    /// Called once after the final tick; returns the collected measurements.
    fn finish(&mut self, net: &mut SdnNetwork) -> WorkloadReport;
}

/// One named per-tick series of a workload report.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NamedSeries {
    /// Series name, e.g. `"throughput_mbps"`.
    pub name: String,
    /// One value per tick.
    pub values: Vec<f64>,
}

/// The measurements a workload collected over its window.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WorkloadReport {
    /// The workload label.
    pub label: String,
    /// Free-form key/value annotations (resolved endpoints, failed links, ...).
    pub notes: Vec<(String, String)>,
    /// Named per-tick series.
    pub series: Vec<NamedSeries>,
    /// Named streaming digests — for sample populations (per-flow completion
    /// times, per-flow rates) that are too large to keep as a series but whose
    /// quantiles are the result. Digests are deterministic summaries, so reports
    /// carrying them still compare bit-identically across thread counts.
    pub digests: Vec<(String, Digest)>,
}

impl WorkloadReport {
    /// Creates an empty report with the given label.
    pub fn new(label: impl Into<String>) -> Self {
        WorkloadReport {
            label: label.into(),
            notes: Vec::new(),
            series: Vec::new(),
            digests: Vec::new(),
        }
    }

    /// Appends a named streaming digest (e.g. the FCT population of a traffic run).
    pub fn push_digest(&mut self, name: impl Into<String>, digest: Digest) {
        self.digests.push((name.into(), digest));
    }

    /// The named digest, if present.
    pub fn digest(&self, name: &str) -> Option<&Digest> {
        self.digests.iter().find(|(n, _)| n == name).map(|(_, d)| d)
    }

    /// Appends a named series.
    pub fn push_series(&mut self, name: impl Into<String>, values: Vec<f64>) {
        self.series.push(NamedSeries {
            name: name.into(),
            values,
        });
    }

    /// Appends a key/value annotation.
    pub fn push_note(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.notes.push((key.into(), value.into()));
    }

    /// The values of the named series, if present.
    pub fn series(&self, name: &str) -> Option<&[f64]> {
        self.series
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.values.as_slice())
    }

    /// The value of the named annotation, if present.
    pub fn note(&self, key: &str) -> Option<&str> {
        self.notes
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_series_and_notes() {
        let mut report = WorkloadReport::new("iperf");
        report.push_series("throughput_mbps", vec![1.0, 2.0]);
        report.push_note("endpoints", "3 -> 9");
        assert_eq!(report.series("throughput_mbps"), Some(&[1.0, 2.0][..]));
        assert_eq!(report.series("missing"), None);
        assert_eq!(report.note("endpoints"), Some("3 -> 9"));
        assert_eq!(report.note("missing"), None);
    }
}
