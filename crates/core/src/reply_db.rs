//! The controller's `replyDB`: the most recently received query replies, from which the
//! controller derives its view of the network topology (paper, Algorithm 2 line 1).
//!
//! The database is bounded by `maxReplies`; trying to exceed the bound triggers a
//! *C-reset* (line 21) that keeps only the controller's own neighborhood record. Both
//! the bound and the reset are essential to the self-stabilization argument (Lemma 2:
//! at most one C-reset per controller per execution once the system is past its
//! arbitrary initial state).

use sdn_switch::QueryReply;
use sdn_tags::Tag;
use sdn_topology::{paths, Graph, NodeId};
use std::collections::{BTreeMap, BTreeSet};

/// The largest-valued tag carried by the rules reported in `reply`, if any.
fn max_rule_tag(reply: &QueryReply) -> Option<Tag> {
    let mut best: Option<Tag> = None;
    for rule in &reply.rules {
        if best.is_none_or(|b| rule.tag.value() > b.value()) {
            best = Some(rule.tag);
        }
    }
    best
}

/// Outcome of inserting a reply into the database.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The reply was stored (possibly replacing an older reply from the same node).
    Stored,
    /// The reply was stored, but only after a C-reset made room for it.
    StoredAfterReset,
    /// The reply was ignored because its tag is not the current round's tag.
    IgnoredStaleTag,
}

/// Bounded store of query replies keyed by `(responder, round tag)`.
#[derive(Clone, Debug, Default)]
pub struct ReplyDb {
    max_replies: usize,
    records: BTreeMap<(NodeId, Tag), QueryReply>,
    /// Largest rule tag per stored reply (`None` for replies without rules),
    /// precomputed at insert so the per-iterate tag observation is O(#replies)
    /// instead of O(#rules). Maintained alongside `records`; replies injected
    /// behind the database's back (tests) fall back to an on-the-fly scan.
    rule_tag_ceiling: BTreeMap<(NodeId, Tag), Option<Tag>>,
    c_resets: u64,
}

impl PartialEq for ReplyDb {
    fn eq(&self, other: &Self) -> bool {
        // The ceiling cache is derived data: databases with equal records are equal.
        self.max_replies == other.max_replies
            && self.records == other.records
            && self.c_resets == other.c_resets
    }
}

impl ReplyDb {
    /// Creates an empty database with capacity `max_replies`.
    ///
    /// # Panics
    ///
    /// Panics if `max_replies == 0`.
    pub fn new(max_replies: usize) -> Self {
        assert!(max_replies > 0, "replyDB needs room for at least one reply");
        ReplyDb {
            max_replies,
            records: BTreeMap::new(),
            rule_tag_ceiling: BTreeMap::new(),
            c_resets: 0,
        }
    }

    /// The configured capacity (`maxReplies`).
    pub fn capacity(&self) -> usize {
        self.max_replies
    }

    /// Number of stored replies.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` when no reply is stored.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of C-resets performed since creation.
    pub fn c_resets(&self) -> u64 {
        self.c_resets
    }

    /// Inserts a reply received with the given expected round tag (Algorithm 2,
    /// lines 20–22): stale tags are ignored, and a full database triggers a C-reset.
    pub fn insert(&mut self, reply: QueryReply, curr_tag: Tag) -> InsertOutcome {
        if reply.echo_tag != curr_tag {
            return InsertOutcome::IgnoredStaleTag;
        }
        let key = (reply.responder, reply.echo_tag);
        let replaces_existing = self.records.contains_key(&key);
        let mut outcome = InsertOutcome::Stored;
        if !replaces_existing && self.records.len() + 1 > self.max_replies {
            self.records.clear();
            self.rule_tag_ceiling.clear();
            self.c_resets += 1;
            outcome = InsertOutcome::StoredAfterReset;
        }
        // Remove any other response from the same node carrying a different tag for the
        // current round bucket (line 22 replaces "the previous response from pj").
        self.rule_tag_ceiling.insert(key, max_rule_tag(&reply));
        self.records.insert(key, reply);
        outcome
    }

    /// Removes every reply whose tag is not in `live_tags` or whose responder is not
    /// reachable from the controller according to the topology derivable from replies of
    /// the *same* tag (Algorithm 2 line 8).
    pub fn prune(&mut self, self_id: NodeId, self_neighbors: &[NodeId], live_tags: &[Tag]) {
        // Replies claiming to come from the controller itself are always synthesized
        // fresh, never stored (line 5 of Algorithm 1): drop any stored one.
        self.records.retain(|(node, _), _| *node != self_id);
        let reachable_per_tag: BTreeMap<Tag, BTreeSet<NodeId>> = live_tags
            .iter()
            .map(|&tag| {
                let graph = self.res_graph(tag, self_id, self_neighbors);
                let reachable: BTreeSet<NodeId> =
                    paths::reachable_set(&graph, self_id).into_iter().collect();
                (tag, reachable)
            })
            .collect();
        self.records.retain(|(node, tag), _| {
            reachable_per_tag
                .get(tag)
                .map(|reachable| reachable.contains(node))
                .unwrap_or(false)
        });
        let records = &self.records;
        self.rule_tag_ceiling
            .retain(|key, _| records.contains_key(key));
    }

    /// Removes every reply carrying `tag` (Algorithm 2 line 12).
    pub fn drop_tag(&mut self, tag: Tag) {
        self.records.retain(|(_, t), _| *t != tag);
        self.rule_tag_ceiling.retain(|(_, t), _| *t != tag);
    }

    /// Performs an explicit C-reset, forgetting everything.
    pub fn c_reset(&mut self) {
        self.records.clear();
        self.rule_tag_ceiling.clear();
        self.c_resets += 1;
    }

    /// The reply from `node` for round `tag`, if stored.
    pub fn get(&self, node: NodeId, tag: Tag) -> Option<&QueryReply> {
        self.records.get(&(node, tag))
    }

    /// All stored replies.
    pub fn iter(&self) -> impl Iterator<Item = (&(NodeId, Tag), &QueryReply)> + '_ {
        self.records.iter()
    }

    /// The set of nodes that have replied with round tag `tag`.
    pub fn responders(&self, tag: Tag) -> BTreeSet<NodeId> {
        self.records
            .keys()
            .filter(|(_, t)| *t == tag)
            .map(|(n, _)| *n)
            .collect()
    }

    /// Every tag present anywhere in the stored replies (including tags inside rules),
    /// used to feed the practically-self-stabilizing tag generator.
    pub fn observed_tags(&self) -> Vec<Tag> {
        let mut tags = Vec::new();
        for ((_, tag), reply) in &self.records {
            tags.push(*tag);
            tags.extend(reply.rules.iter().map(|r| r.tag));
        }
        tags
    }

    /// The tag with the largest value present anywhere in the stored replies (including
    /// tags inside rules). The tag generator folds observations with `max`, so this is
    /// all it needs — without walking every rule of every reply each iteration.
    pub fn max_observed_tag(&self) -> Option<Tag> {
        let mut best: Option<Tag> = None;
        for ((node, tag), reply) in &self.records {
            for t in [
                Some(*tag),
                self.rule_tag_ceiling
                    .get(&(*node, *tag))
                    .copied()
                    .unwrap_or_else(|| max_rule_tag(reply)),
            ]
            .into_iter()
            .flatten()
            {
                if best.is_none_or(|b| t.value() > b.value()) {
                    best = Some(t);
                }
            }
        }
        best
    }

    /// `G(res(tag))`: the topology derivable from the replies of round `tag` plus the
    /// controller's own neighborhood record.
    pub fn res_graph(&self, tag: Tag, self_id: NodeId, self_neighbors: &[NodeId]) -> Graph {
        let mut g = Graph::new();
        g.add_node(self_id);
        for &nb in self_neighbors {
            g.add_link(self_id, nb);
        }
        for ((node, t), reply) in &self.records {
            if *t != tag {
                continue;
            }
            g.add_node(*node);
            for &nb in &reply.neighbors {
                if nb != *node {
                    g.add_link(*node, nb);
                }
            }
        }
        g
    }

    /// The *fusion* view (Algorithm 2 line 5): the current round's replies plus, for
    /// nodes that have not answered the current round yet, the previous round's replies.
    pub fn fusion(&self, curr: Tag, prev: Tag) -> BTreeMap<NodeId, &QueryReply> {
        let mut out: BTreeMap<NodeId, &QueryReply> = BTreeMap::new();
        for ((node, tag), reply) in &self.records {
            if *tag == prev {
                out.entry(*node).or_insert(reply);
            }
        }
        for ((node, tag), reply) in &self.records {
            if *tag == curr {
                out.insert(*node, reply);
            }
        }
        out
    }

    /// `G(fusion)`: the topology derivable from the fusion view plus the controller's
    /// own neighborhood.
    ///
    /// A link claimed by one endpoint's reply is *dropped* when the other endpoint
    /// has strictly fresher information contradicting it — a newer-tagged reply (or
    /// the controller's own live neighborhood) that does not list the claimant.
    /// Without this tie-break a failed link can wedge the whole control plane: the
    /// stale endpoint's previous-round reply keeps the dead link in the fusion view,
    /// the plan keeps routing that endpoint's queries over the dead link, so its
    /// current-round reply never arrives, the round never completes, and the stale
    /// reply is never evicted.
    pub fn fusion_graph(
        &self,
        curr: Tag,
        prev: Tag,
        self_id: NodeId,
        self_neighbors: &[NodeId],
    ) -> Graph {
        let fusion = self.fusion(curr, prev);
        let mut g = Graph::new();
        g.add_node(self_id);
        for &nb in self_neighbors {
            g.add_link(self_id, nb);
        }
        for (&node, reply) in &fusion {
            g.add_node(node);
            for &nb in &reply.neighbors {
                if nb == node {
                    continue;
                }
                let contradicted = if nb == self_id {
                    // The controller's own observation is always current.
                    !self_neighbors.contains(&node)
                } else {
                    fusion.get(&nb).is_some_and(|other| {
                        other.echo_tag > reply.echo_tag && !other.neighbors.contains(&node)
                    })
                };
                if !contradicted {
                    g.add_link(node, nb);
                }
            }
        }
        g
    }

    /// The round-completion test of Algorithm 2 line 10: every node reachable from the
    /// controller in `G(res(curr))` has sent a reply tagged `curr`.
    pub fn round_complete(&self, curr: Tag, self_id: NodeId, self_neighbors: &[NodeId]) -> bool {
        let graph = self.res_graph(curr, self_id, self_neighbors);
        let responders = self.responders(curr);
        paths::reachable_set(&graph, self_id)
            .into_iter()
            .filter(|&n| n != self_id)
            .all(|n| responders.contains(&n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn reply(responder: u32, neighbors: &[u32], tag: Tag) -> QueryReply {
        QueryReply {
            responder: n(responder),
            neighbors: neighbors.iter().map(|&i| n(i)).collect(),
            managers: vec![],
            rules: vec![],
            echo_tag: tag,
        }
    }

    const T1: Tag = Tag::new(0, 1);
    const T2: Tag = Tag::new(0, 2);

    #[test]
    fn insert_stores_current_tag_and_ignores_stale() {
        let mut db = ReplyDb::new(8);
        assert_eq!(db.insert(reply(3, &[0, 4], T1), T1), InsertOutcome::Stored);
        assert_eq!(
            db.insert(reply(4, &[3], T2), T1),
            InsertOutcome::IgnoredStaleTag
        );
        assert_eq!(db.len(), 1);
        assert!(db.get(n(3), T1).is_some());
        assert!(db.get(n(4), T2).is_none());
    }

    #[test]
    fn reinsert_replaces_previous_reply_from_same_node() {
        let mut db = ReplyDb::new(8);
        db.insert(reply(3, &[0], T1), T1);
        db.insert(reply(3, &[0, 4], T1), T1);
        assert_eq!(db.len(), 1);
        assert_eq!(db.get(n(3), T1).unwrap().neighbors.len(), 2);
    }

    #[test]
    fn overflowing_capacity_triggers_c_reset() {
        let mut db = ReplyDb::new(2);
        db.insert(reply(3, &[0], T1), T1);
        db.insert(reply(4, &[0], T1), T1);
        assert_eq!(
            db.insert(reply(5, &[0], T1), T1),
            InsertOutcome::StoredAfterReset
        );
        assert_eq!(db.len(), 1, "reset keeps only the new reply");
        assert_eq!(db.c_resets(), 1);
    }

    #[test]
    fn res_graph_includes_self_neighborhood() {
        let mut db = ReplyDb::new(8);
        db.insert(reply(3, &[4], T1), T1);
        let g = db.res_graph(T1, n(0), &[n(3)]);
        assert!(g.has_link(n(0), n(3)));
        assert!(g.has_link(n(3), n(4)));
        assert_eq!(g.node_count(), 3);
        // A different tag sees only the self record.
        let g2 = db.res_graph(T2, n(0), &[n(3)]);
        assert_eq!(g2.node_count(), 2);
    }

    #[test]
    fn prune_removes_stale_tags_and_unreachable_responders() {
        let mut db = ReplyDb::new(8);
        db.insert(reply(3, &[0, 4], T1), T1);
        db.insert(reply(9, &[10], T1), T1); // not connected to controller 0
                                            // An old-tag reply sneaks in (e.g. left over from a corrupted state).
        db.records.insert((n(7), T2), reply(7, &[0], T2));
        db.prune(n(0), &[n(3)], &[T1]);
        assert!(db.get(n(3), T1).is_some());
        assert!(db.get(n(9), T1).is_none(), "unreachable responder pruned");
        assert!(db.get(n(7), T2).is_none(), "stale tag pruned");
    }

    #[test]
    fn prune_drops_replies_claiming_to_be_self() {
        let mut db = ReplyDb::new(8);
        db.records.insert((n(0), T1), reply(0, &[42], T1));
        db.prune(n(0), &[n(3)], &[T1]);
        assert!(db.get(n(0), T1).is_none());
    }

    #[test]
    fn fusion_prefers_current_round() {
        let mut db = ReplyDb::new(8);
        db.records.insert((n(3), T1), reply(3, &[0], T1));
        db.records.insert((n(3), T2), reply(3, &[0, 4], T2));
        db.records.insert((n(5), T1), reply(5, &[0], T1));
        let fusion = db.fusion(T2, T1);
        assert_eq!(fusion[&n(3)].neighbors.len(), 2, "current-round reply wins");
        assert_eq!(
            fusion[&n(5)].neighbors.len(),
            1,
            "previous round fills gaps"
        );
        let g = db.fusion_graph(T2, T1, n(0), &[n(3), n(5)]);
        assert!(g.has_link(n(3), n(4)));
        assert!(g.has_link(n(0), n(5)));
    }

    #[test]
    fn fusion_graph_drops_links_contradicted_by_fresher_replies() {
        let mut db = ReplyDb::new(8);
        // Node 4's current-round reply no longer lists 5 (their link failed), but
        // node 5's previous-round reply still claims it.
        db.records.insert((n(4), T2), reply(4, &[0, 3], T2));
        db.records.insert((n(5), T1), reply(5, &[4, 6], T1));
        let g = db.fusion_graph(T2, T1, n(0), &[n(4)]);
        assert!(
            !g.has_link(n(4), n(5)),
            "stale claim loses to the fresher contradicting reply"
        );
        assert!(g.has_link(n(5), n(6)), "uncontradicted claims survive");
        assert!(g.has_link(n(4), n(3)), "fresh claims survive");

        // Same-tag replies keep union semantics: a mid-round disagreement is not
        // a contradiction.
        let mut db = ReplyDb::new(8);
        db.records.insert((n(4), T2), reply(4, &[0], T2));
        db.records.insert((n(5), T2), reply(5, &[4], T2));
        let g = db.fusion_graph(T2, T1, n(0), &[n(4)]);
        assert!(
            g.has_link(n(4), n(5)),
            "equal freshness falls back to union"
        );
    }

    #[test]
    fn fusion_graph_trusts_own_neighborhood_over_stale_claims() {
        let mut db = ReplyDb::new(8);
        // Node 3's stale reply claims adjacency to the controller, but the
        // controller no longer observes node 3.
        db.records.insert((n(3), T1), reply(3, &[0, 4], T1));
        let g = db.fusion_graph(T2, T1, n(0), &[n(5)]);
        assert!(!g.has_link(n(0), n(3)), "own observation is always current");
        assert!(g.has_link(n(3), n(4)), "claims about third parties survive");
    }

    #[test]
    fn round_completion_requires_all_reachable_nodes() {
        let mut db = ReplyDb::new(8);
        // Controller 0 has neighbor 3; 3 knows 4.
        db.insert(reply(3, &[0, 4], T1), T1);
        assert!(
            !db.round_complete(T1, n(0), &[n(3)]),
            "node 4 is reachable but has not replied"
        );
        db.insert(reply(4, &[3], T1), T1);
        assert!(db.round_complete(T1, n(0), &[n(3)]));
    }

    #[test]
    fn drop_tag_and_observed_tags() {
        let mut db = ReplyDb::new(8);
        db.insert(reply(3, &[0], T1), T1);
        db.records.insert((n(4), T2), reply(4, &[0], T2));
        assert_eq!(db.observed_tags().len(), 2);
        db.drop_tag(T1);
        assert!(db.get(n(3), T1).is_none());
        assert!(db.get(n(4), T2).is_some());
        db.c_reset();
        assert!(db.is_empty());
        assert_eq!(db.c_resets(), 1);
        assert_eq!(db.capacity(), 8);
    }

    #[test]
    #[should_panic(expected = "at least one reply")]
    fn zero_capacity_rejected() {
        let _ = ReplyDb::new(0);
    }
}
