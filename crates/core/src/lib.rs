//! **Renaissance** — a self-stabilizing, distributed, in-band SDN control plane.
//!
//! This crate is a from-scratch Rust reproduction of the system described in
//! *"Renaissance: A Self-Stabilizing Distributed SDN Control Plane using In-band
//! Communications"* (Canini, Salem, Schiff, Schiller, Schmid — ICDCS 2018). It contains
//! the paper's primary contribution:
//!
//! * [`controller::Controller`] — Algorithm 2: round-synchronized topology discovery,
//!   in-band bootstrapping, kappa-fault-resilient rule installation, stale-state
//!   cleanup, C-resets,
//! * [`config::Variant`] — the memory-adaptive main algorithm and the Theta(D)
//!   non-adaptive variation of Section 8.1,
//! * the three-tag rule-retention variant used by the paper's evaluation (Section 6.2),
//! * [`legitimacy`] — the legitimate-state predicate of Definition 1,
//! * [`harness::SdnNetwork`] — a complete simulated deployment (controllers, abstract
//!   switches, discrete-event network) with fault injection, replacing the paper's
//!   OVS/Floodlight/Mininet testbed,
//! * [`faults`] — arbitrary transient-state corruption (the Theorem 2 experiments the
//!   original prototype could not run),
//! * [`scenario`] — the declarative experiment API: [`scenario::ScenarioBuilder`]
//!   composes a topology, configurations, a typed fault schedule, traffic workloads,
//!   and probes, and a single event-driven runner executes the whole experiment over
//!   multiple seeds.
//!
//! # Quick start
//!
//! Declare an experiment — topology, faults, repetitions — and run it:
//!
//! ```
//! use renaissance::scenario::{ControllerSelector, FaultEvent, Scenario};
//! use sdn_netsim::SimDuration;
//!
//! // A small ring with 2 controllers bootstraps in-band to a legitimate state; one
//! // controller then fail-stops and the survivor cleans up after it.
//! let report = Scenario::builder("quickstart")
//!     .topology(sdn_topology::builders::ring(5, 2))
//!     .task_delay(SimDuration::from_millis(100))
//!     .fault_at(
//!         SimDuration::from_secs(1),
//!         FaultEvent::FailController(ControllerSelector::Index(1)),
//!     )
//!     .runs(2)
//!     .run();
//! assert!(report.all_converged());
//! assert!(report.bootstrap_digest().mean() > 0.0);
//! assert!(report.recovery_digest().mean() > 0.0);
//! ```
//!
//! The [`harness::SdnNetwork`] escape hatch underneath remains available for ad-hoc
//! driving:
//!
//! ```
//! use renaissance::{ControllerConfig, HarnessConfig, SdnNetwork};
//! use sdn_netsim::SimDuration;
//! use sdn_topology::builders;
//!
//! let mut sdn = SdnNetwork::new(
//!     builders::ring(5, 2),
//!     ControllerConfig::for_network(2, 5),
//!     HarnessConfig::default().with_task_delay(SimDuration::from_millis(100)),
//! );
//! let bootstrap_time = sdn
//!     .run_until_legitimate(SimDuration::from_millis(100), SimDuration::from_secs(120))
//!     .expect("Renaissance bootstraps every connected topology");
//! assert!(bootstrap_time > SimDuration::ZERO);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod controller;
pub mod faults;
pub mod harness;
pub mod legitimacy;
pub mod nodes;
pub mod packet;
pub mod reply_db;
pub mod scenario;

pub use config::{ControllerConfig, HarnessConfig, Variant};
pub use controller::{Controller, ControllerStats};
pub use faults::{CorruptionPlan, FaultInjector};
pub use harness::SdnNetwork;
pub use legitimacy::LegitimacyReport;
pub use nodes::SdnNode;
pub use packet::{ControlPacket, PacketBody};
pub use reply_db::ReplyDb;
pub use scenario::{Scenario, ScenarioBuilder, ScenarioReport, ScenarioRunner};
