//! The Renaissance controller: the self-stabilizing SDN control-plane algorithm
//! (paper, Algorithm 2).
//!
//! A [`Controller`] is a pure state machine: [`Controller::iterate`] runs one iteration
//! of the do-forever loop and returns the command batches to send, and
//! [`Controller::on_reply`] / [`Controller::on_query`] handle incoming messages. All
//! networking (packet envelopes, in-band forwarding, timers) lives in
//! [`crate::nodes`], which keeps this module testable in isolation.

use crate::config::{ControllerConfig, Variant};
use crate::reply_db::{InsertOutcome, ReplyDb};
use sdn_switch::{CommandBatch, QueryReply, Rule, SwitchCommand};
use sdn_tags::{RoundTracker, Tag, TagGenerator};
use sdn_topology::{FlowPlan, FlowPlanner, Graph, NodeId};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Counters describing a controller's activity; several experiments (Figure 9, the
/// Theorem 1 illegitimate-deletion bound) are read straight off these numbers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ControllerStats {
    /// Iterations of the do-forever loop executed.
    pub iterations: u64,
    /// Synchronization rounds completed (new tags generated).
    pub rounds_completed: u64,
    /// Query commands sent.
    pub queries_sent: u64,
    /// `updateRule` commands sent.
    pub rule_updates_sent: u64,
    /// `delMngr` commands sent (removal of other controllers from switches).
    pub manager_deletions_requested: u64,
    /// `delAllRules` commands sent (removal of other controllers' rules).
    pub rule_deletions_requested: u64,
    /// Query replies accepted into `replyDB`.
    pub replies_accepted: u64,
    /// Query replies ignored because they carried a stale tag.
    pub replies_ignored: u64,
    /// Queries from other controllers answered.
    pub queries_answered: u64,
}

/// One Renaissance controller (a member of `PC`).
#[derive(Clone, Debug)]
pub struct Controller {
    id: NodeId,
    config: ControllerConfig,
    reply_db: ReplyDb,
    rounds: RoundTracker,
    tag_gen: TagGenerator,
    /// The routing plan derived from the latest fusion view; used to pick first hops for
    /// the controller's own outgoing packets. Shared (`Arc`) because the plan of each
    /// round is identical to the rule plan — one computation, no clone.
    plan: Arc<FlowPlan>,
    /// The reference graph `plan` was computed over. Once the view converges the
    /// graph stops changing, and every subsequent iteration reuses the plan instead
    /// of re-running the all-pairs planner — the steady state costs one graph
    /// comparison instead of `n` BFS traversals. `None` until the first plan.
    planned_graph: Option<Graph>,
    stats: ControllerStats,
    /// Bumped whenever state a legitimacy check reads (`replyDB`, round tags, the
    /// routing plan) may have changed; the harness dirty-tracks on it.
    state_version: u64,
}

impl Controller {
    /// Creates a controller with empty knowledge of the network.
    pub fn new(id: NodeId, config: ControllerConfig) -> Self {
        let mut tag_gen = TagGenerator::new(id.index());
        let initial = tag_gen.next_tag();
        let rounds = if config.three_tags {
            RoundTracker::with_three_tags(initial)
        } else {
            RoundTracker::new(initial)
        };
        Controller {
            id,
            config,
            reply_db: ReplyDb::new(config.max_replies),
            rounds,
            tag_gen,
            plan: Arc::new(FlowPlan::default()),
            planned_graph: None,
            stats: ControllerStats::default(),
            state_version: 0,
        }
    }

    /// This controller's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The configuration this controller runs with.
    pub fn config(&self) -> ControllerConfig {
        self.config
    }

    /// Activity counters.
    pub fn stats(&self) -> ControllerStats {
        self.stats
    }

    /// A counter that bumps whenever the state the legitimacy predicate reads —
    /// `replyDB`, the round tags, the routing plan — may have changed. Two equal
    /// versions on the same controller guarantee an unchanged view, which is what
    /// lets the harness dirty-track its legitimacy checks.
    pub fn state_version(&self) -> u64 {
        self.state_version
    }

    /// The current synchronization-round tag (`currTag`).
    pub fn curr_tag(&self) -> Tag {
        self.rounds.curr()
    }

    /// The previous synchronization-round tag (`prevTag`).
    pub fn prev_tag(&self) -> Tag {
        self.rounds.prev()
    }

    /// Read-only access to the reply database.
    pub fn reply_db(&self) -> &ReplyDb {
        &self.reply_db
    }

    /// Number of C-resets this controller has performed.
    pub fn c_resets(&self) -> u64 {
        self.reply_db.c_resets()
    }

    /// The topology this controller currently believes in (the fusion view of
    /// Algorithm 2 line 5, including its own neighborhood).
    pub fn discovered_graph(&self, neighbors: &[NodeId]) -> Graph {
        self.reply_db
            .fusion_graph(self.rounds.curr(), self.rounds.prev(), self.id, neighbors)
    }

    /// The first-hop candidates (in priority order) this controller would use to reach
    /// `dst`, according to its latest routing plan.
    pub fn first_hop_candidates(&self, dst: NodeId) -> Vec<NodeId> {
        self.plan
            .next_hops(self.id, dst)
            .map(|set| set.iter().collect())
            .unwrap_or_default()
    }

    /// The first plan candidate towards `dst` that is currently an observed
    /// neighbor — the allocation-free routing decision
    /// [`first_hop_candidates`](Controller::first_hop_candidates) is collected from.
    pub fn first_hop(&self, dst: NodeId, neighbors: &[NodeId]) -> Option<NodeId> {
        self.plan
            .next_hops(self.id, dst)?
            .iter()
            .find(|h| neighbors.contains(h))
    }

    /// One iteration of the do-forever loop (Algorithm 2 lines 7–19).
    ///
    /// `neighbors` is the controller's currently observed neighborhood `Nc(i)`.
    /// Returns the per-destination command batches to send; the caller is responsible
    /// for wrapping them into in-band packets and routing them hop by hop.
    pub fn iterate(&mut self, neighbors: &[NodeId]) -> Vec<(NodeId, CommandBatch)> {
        self.stats.iterations += 1;
        self.state_version += 1;

        // Line 8: keep only live, reachable replies; re-learn every tag seen so far so
        // that nextTag() stays ahead of anything in the system.
        let live_tags = [self.rounds.curr(), self.rounds.prev()];
        self.reply_db.prune(self.id, neighbors, &live_tags);
        // The generator only keeps the running max, so one representative tag is
        // equivalent to observing every tag in the database (`observed_tags`).
        if let Some(tag) = self.reply_db.max_observed_tag() {
            self.tag_gen.observe(tag);
        }

        // Lines 10–12: finish the round when every reachable node has answered it.
        let mut new_round = false;
        if self
            .reply_db
            .round_complete(self.rounds.curr(), self.id, neighbors)
        {
            let next = self.tag_gen.next_tag();
            self.rounds.start_round(next);
            self.reply_db.drop_tag(self.rounds.curr());
            self.stats.rounds_completed += 1;
            new_round = true;
        }
        let curr = self.rounds.curr();
        let prev = self.rounds.prev();

        // Line 13: pick the reference view for rule generation — a borrow of whichever
        // derived graph matches, never a clone.
        let fusion_graph = self.reply_db.fusion_graph(curr, prev, self.id, neighbors);
        let prev_graph = self.reply_db.res_graph(prev, self.id, neighbors);
        let use_prev = fusion_graph == prev_graph;
        let (refer_tag, refer_graph) = if use_prev {
            (prev, &prev_graph)
        } else {
            (curr, &fusion_graph)
        };

        // Controllers never relay packets, so flows must not be planned through them.
        let non_transit: BTreeSet<NodeId> = refer_graph
            .nodes()
            .filter(|n| n.is_controller(self.config.n_controllers))
            .collect();
        // The reference graph always equals the fusion view (`use_prev` means the two
        // coincide), so the rule plan doubles as the controller's own routing plan:
        // one computation, shared through the `Arc`. The plan is a pure function of
        // the reference graph (the planner config is fixed and `non_transit` is
        // derived from the graph), so an unchanged graph reuses the previous plan.
        let rule_plan = if self.planned_graph.as_ref() == Some(refer_graph) {
            Arc::clone(&self.plan)
        } else {
            let mut planner = FlowPlanner::new(self.config.kappa);
            if let Some(limit) = self.config.max_priorities {
                planner = planner.with_max_candidates(limit);
            }
            self.planned_graph = Some(refer_graph.clone());
            Arc::new(planner.plan_restricted(refer_graph, &non_transit))
        };
        self.plan = Arc::clone(&rule_plan);

        // Reachability in the *previous* round's view decides which controllers are
        // considered alive when a new round cleans up stale state (line 15).
        let prev_reachable: BTreeSet<NodeId> =
            sdn_topology::paths::reachable_set(&prev_graph, self.id)
                .into_iter()
                .collect();

        // Lines 14–19: build one batch per reachable node.
        let keep_tags = if self.config.three_tags {
            vec![prev]
        } else {
            Vec::new()
        };
        let mut messages = Vec::new();
        for dst in sdn_topology::paths::reachable_set(&fusion_graph, self.id) {
            if dst == self.id {
                continue;
            }
            let mut commands = vec![SwitchCommand::NewRound { tag: curr }];
            if dst.is_switch(self.config.n_controllers) {
                if let Some(reply) = self.reply_db.get(dst, refer_tag) {
                    let (update, manager_deletions, rule_deletions) = switch_update_commands(
                        self.config,
                        self.id,
                        reply,
                        new_round,
                        &prev_reachable,
                    );
                    commands.extend(update);
                    self.stats.manager_deletions_requested += manager_deletions;
                    self.stats.rule_deletions_requested += rule_deletions;
                } else {
                    // Query-and-modify-by-neighbor (paper, Section 2.1.1): a switch we
                    // discovered through a neighbor's reply but have not heard from yet
                    // still gets a flow towards us installed — otherwise its own reply
                    // could never travel back and discovery would stall at distance two.
                    commands.push(SwitchCommand::AddManager {
                        controller: self.id,
                    });
                }
                commands.push(SwitchCommand::UpdateRules {
                    rules: self.my_rules(&rule_plan, dst, curr),
                    keep_tags: keep_tags.clone(),
                });
                self.stats.rule_updates_sent += 1;
            }
            commands.push(SwitchCommand::Query { tag: curr });
            self.stats.queries_sent += 1;
            messages.push((dst, CommandBatch::new(self.id, commands)));
        }
        messages
    }

    /// `myRules(G, j, tag)`: the rules this controller installs at switch `j` given its
    /// current view `G` (paper, Sections 2.2.2 and 3.3). One wildcard-source rule per
    /// destination and priority level, encoding the kappa-fault-resilient flow towards
    /// that destination.
    fn my_rules(&self, plan: &FlowPlan, switch: NodeId, tag: Tag) -> Vec<Rule> {
        let mut rules = Vec::new();
        // One ordered range scan over the plan: the plan only stores pairs of its
        // own reference graph with a non-empty hop set and never an `(s, s)` pair,
        // so this visits exactly the destinations the per-node lookup loop did, in
        // the same ascending order.
        for (dst, hops) in plan.next_hops_from(switch) {
            for (level, fwd) in hops.iter().enumerate() {
                rules.push(Rule {
                    cid: self.id,
                    sid: switch,
                    src: None,
                    dst,
                    prt: u8::MAX - level.min(u8::MAX as usize - 1) as u8,
                    fwd,
                    tag,
                });
            }
        }
        rules
    }

    /// Handles a query reply travelling back to this controller
    /// (Algorithm 2 lines 20–22).
    pub fn on_reply(&mut self, reply: QueryReply) {
        self.tag_gen.observe(reply.echo_tag);
        match self.reply_db.insert(reply, self.rounds.curr()) {
            InsertOutcome::Stored | InsertOutcome::StoredAfterReset => {
                self.stats.replies_accepted += 1;
                self.state_version += 1;
            }
            InsertOutcome::IgnoredStaleTag => {
                self.stats.replies_ignored += 1;
            }
        }
    }

    /// Handles a query from another controller (Algorithm 2 line 23): the response
    /// carries only this controller's identity and neighborhood.
    pub fn on_query(&mut self, _from: NodeId, tag: Tag, neighbors: &[NodeId]) -> QueryReply {
        self.stats.queries_answered += 1;
        self.tag_gen.observe(tag);
        QueryReply::from_controller(self.id, neighbors.to_vec(), tag)
    }

    // ------------------------------------------------------------------
    // Transient-fault injection helpers (Theorem 2 experiments).
    // ------------------------------------------------------------------

    /// Corrupts the round tags — models a transient fault hitting the controller.
    pub fn corrupt_tags(&mut self, curr: Tag, prev: Tag) {
        self.state_version += 1;
        self.rounds.corrupt(curr, prev);
    }

    /// Injects an arbitrary (possibly bogus) reply into `replyDB`, bypassing the tag
    /// check — models a transient fault corrupting the controller's memory.
    pub fn corrupt_inject_reply(&mut self, reply: QueryReply) {
        self.state_version += 1;
        let tag = reply.echo_tag;
        let _ = self.reply_db.insert(reply, tag);
    }
}

/// Builds the manager / stale-rule cleanup commands for one switch, returning the
/// commands plus the `(delMngr, delAllRules)` counts for the stats.
///
/// The cleanup criterion follows the paper's Algorithm 1 (line 10): at the start of
/// a new synchronization round, remove any manager or rule belonging to a controller
/// that was *not discovered to be reachable* during the previous round. (Algorithm 2
/// line 15 additionally keys the decision on whether the manager currently has rules
/// in the queried snapshot; because every query is answered after the same batch's
/// deletions are applied, that extra condition lets two live controllers alternately
/// delete each other's state forever under an unlucky deterministic schedule, so we
/// implement the reachability-only criterion that Algorithm 1 describes. See
/// DESIGN.md, "Deviations".)
///
/// The non-memory-adaptive variant (Section 8.1) issues no deletions at all and
/// leaves cleanup to the switches' own eviction.
fn switch_update_commands(
    config: ControllerConfig,
    self_id: NodeId,
    reply: &QueryReply,
    new_round: bool,
    prev_reachable: &BTreeSet<NodeId>,
) -> (Vec<SwitchCommand>, u64, u64) {
    let mut commands = Vec::new();
    let mut manager_deletions = 0u64;
    let mut rule_deletions = 0u64;
    if config.variant == Variant::MemoryAdaptive && new_round {
        let is_stale = |k: &NodeId| {
            *k != self_id && (!k.is_controller(config.n_controllers) || !prev_reachable.contains(k))
        };
        for &manager in &reply.managers {
            if is_stale(&manager) {
                commands.push(SwitchCommand::DelManager {
                    controller: manager,
                });
                manager_deletions += 1;
            }
        }
        let controllers_with_rules: BTreeSet<NodeId> = reply.rules.iter().map(|r| r.cid).collect();
        for &cid in &controllers_with_rules {
            if is_stale(&cid) {
                commands.push(SwitchCommand::DelAllRules { controller: cid });
                rule_deletions += 1;
            }
        }
    }
    commands.push(SwitchCommand::AddManager {
        controller: self_id,
    });
    (commands, manager_deletions, rule_deletions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn config() -> ControllerConfig {
        ControllerConfig::for_network(1, 4)
    }

    fn reply_from_switch(
        responder: u32,
        neighbors: &[u32],
        managers: &[u32],
        rules: Vec<Rule>,
        tag: Tag,
    ) -> QueryReply {
        QueryReply {
            responder: n(responder),
            neighbors: neighbors.iter().map(|&i| n(i)).collect(),
            managers: managers.iter().map(|&i| n(i)).collect(),
            rules,
            echo_tag: tag,
        }
    }

    fn stale_rule(cid: u32, sid: u32) -> Rule {
        Rule {
            cid: n(cid),
            sid: n(sid),
            src: None,
            dst: n(0),
            prt: 1,
            fwd: n(0),
            tag: Tag::new(cid, 1),
        }
    }

    /// Line topology: controller 0 — switch 1 — switch 2 — switch 3.
    fn run_discovery_round_trip(controller: &mut Controller, hops: &[(u32, Vec<u32>)]) {
        // Simulate one query/reply exchange: every switch in `hops` answers with its
        // neighborhood, tagged with the controller's current round.
        let tag = controller.curr_tag();
        for (switch, neighbors) in hops {
            controller.on_reply(reply_from_switch(*switch, neighbors, &[0], vec![], tag));
        }
    }

    #[test]
    fn first_iteration_queries_direct_neighbors_only() {
        let mut c = Controller::new(n(0), config());
        let out = c.iterate(&[n(1)]);
        assert_eq!(out.len(), 1);
        let (dst, batch) = &out[0];
        assert_eq!(*dst, n(1));
        assert_eq!(batch.from, n(0));
        assert_eq!(batch.query_tag(), Some(c.curr_tag()));
        // Even before switch 1 has ever replied, the controller installs a flow towards
        // itself (query-and-modify-by-neighbor) so the reply can travel back in-band.
        let rules = batch
            .commands
            .iter()
            .find_map(|c| match c {
                SwitchCommand::UpdateRules { rules, .. } => Some(rules.clone()),
                _ => None,
            })
            .expect("bootstrap batch must install a flow");
        assert!(rules.iter().any(|r| r.dst == n(0)));
        assert_eq!(c.stats().iterations, 1);
        assert_eq!(c.stats().queries_sent, 1);
    }

    #[test]
    fn discovery_expands_hop_by_hop() {
        let mut c = Controller::new(n(0), config());
        let _ = c.iterate(&[n(1)]);
        // Switch 1 answers: it also sees switch 2.
        run_discovery_round_trip(&mut c, &[(1, vec![0, 2])]);
        let out = c.iterate(&[n(1)]);
        let destinations: Vec<NodeId> = out.iter().map(|(d, _)| *d).collect();
        assert!(destinations.contains(&n(1)));
        assert!(
            destinations.contains(&n(2)),
            "second hop discovered via switch 1's reply"
        );
        // Switch 1 (which has answered) and the freshly discovered switch 2 both receive
        // rule updates; switch 2's rules give it a path back to the controller via 1.
        for switch in [n(1), n(2)] {
            let batch = &out.iter().find(|(d, _)| *d == switch).unwrap().1;
            let rules = batch
                .commands
                .iter()
                .find_map(|c| match c {
                    SwitchCommand::UpdateRules { rules, .. } => Some(rules.clone()),
                    _ => None,
                })
                .unwrap_or_else(|| panic!("switch {switch} must receive rules"));
            assert!(
                rules.iter().any(|r| r.dst == n(0)),
                "switch {switch} needs a flow to the controller"
            );
        }
    }

    #[test]
    fn rules_cover_every_discovered_destination_bidirectionally() {
        let mut c = Controller::new(n(0), config());
        let _ = c.iterate(&[n(1)]);
        run_discovery_round_trip(&mut c, &[(1, vec![0, 2]), (2, vec![1, 3]), (3, vec![2])]);
        let out = c.iterate(&[n(1)]);
        let batch_for_2 = &out.iter().find(|(d, _)| *d == n(2)).unwrap().1;
        let rules: &Vec<Rule> = batch_for_2
            .commands
            .iter()
            .find_map(|c| match c {
                SwitchCommand::UpdateRules { rules, .. } => Some(rules),
                _ => None,
            })
            .expect("switch 2 must receive rules");
        // Switch 2 must know how to reach the controller (0), switch 1 and switch 3.
        for dst in [0u32, 1, 3] {
            assert!(
                rules.iter().any(|r| r.dst == n(dst)),
                "missing rule towards {dst}"
            );
        }
        // All rules carry the current tag and our controller id.
        assert!(rules.iter().all(|r| r.cid == n(0)));
        assert!(rules.iter().all(|r| r.tag == c.curr_tag()));
    }

    #[test]
    fn round_completes_once_all_reachable_nodes_answer() {
        let mut c = Controller::new(n(0), config());
        let _ = c.iterate(&[n(1)]);
        run_discovery_round_trip(&mut c, &[(1, vec![0, 2])]);
        let before = c.stats().rounds_completed;
        let _ = c.iterate(&[n(1)]);
        assert_eq!(
            c.stats().rounds_completed,
            before,
            "switch 2 has not answered yet, the round must not complete"
        );
        run_discovery_round_trip(&mut c, &[(1, vec![0, 2]), (2, vec![1])]);
        let tag_before = c.curr_tag();
        let _ = c.iterate(&[n(1)]);
        assert_eq!(c.stats().rounds_completed, before + 1);
        assert!(
            c.curr_tag() > tag_before,
            "a fresh, larger tag starts the new round"
        );
        assert_eq!(c.prev_tag(), tag_before);
    }

    #[test]
    fn stale_controller_state_is_cleaned_up_on_new_rounds() {
        let mut c = Controller::new(n(0), config());
        let _ = c.iterate(&[n(1)]);
        // Switch 1 reports a manager (controller 7) that does not exist any more, with
        // leftover rules, and switch 2 completes the discovery.
        let tag = c.curr_tag();
        c.on_reply(reply_from_switch(
            1,
            &[0, 2],
            &[0, 7],
            vec![stale_rule(7, 1)],
            tag,
        ));
        c.on_reply(reply_from_switch(2, &[1], &[0], vec![], tag));
        // This iteration completes the round; the next one must emit the cleanup.
        let _ = c.iterate(&[n(1)]);
        let tag = c.curr_tag();
        c.on_reply(reply_from_switch(
            1,
            &[0, 2],
            &[0, 7],
            vec![stale_rule(7, 1)],
            tag,
        ));
        c.on_reply(reply_from_switch(2, &[1], &[0], vec![], tag));
        let out = c.iterate(&[n(1)]);
        let batch_for_1 = &out.iter().find(|(d, _)| *d == n(1)).unwrap().1;
        assert!(
            batch_for_1.commands.iter().any(
                |cmd| matches!(cmd, SwitchCommand::DelManager { controller } if *controller == n(7))
            ),
            "unreachable controller 7 must be removed from the manager set"
        );
        assert!(
            batch_for_1
                .commands
                .iter()
                .any(|cmd| matches!(cmd, SwitchCommand::DelAllRules { controller } if *controller == n(7))),
            "controller 7's rules must be purged"
        );
        assert!(c.stats().manager_deletions_requested >= 1);
        assert!(c.stats().rule_deletions_requested >= 1);
    }

    #[test]
    fn non_adaptive_variant_never_requests_deletions() {
        let mut c = Controller::new(n(0), config().non_adaptive());
        let _ = c.iterate(&[n(1)]);
        let tag = c.curr_tag();
        c.on_reply(reply_from_switch(
            1,
            &[0],
            &[0, 7],
            vec![stale_rule(7, 1)],
            tag,
        ));
        let _ = c.iterate(&[n(1)]);
        let tag = c.curr_tag();
        c.on_reply(reply_from_switch(
            1,
            &[0],
            &[0, 7],
            vec![stale_rule(7, 1)],
            tag,
        ));
        let out = c.iterate(&[n(1)]);
        let batch_for_1 = &out.iter().find(|(d, _)| *d == n(1)).unwrap().1;
        assert!(!batch_for_1.commands.iter().any(|cmd| matches!(
            cmd,
            SwitchCommand::DelManager { .. } | SwitchCommand::DelAllRules { .. }
        )));
        assert_eq!(c.stats().manager_deletions_requested, 0);
        assert_eq!(c.stats().rule_deletions_requested, 0);
    }

    #[test]
    fn three_tag_variant_keeps_previous_round_rules() {
        let cfg = config(); // three_tags defaults to true
        let mut c = Controller::new(n(0), cfg);
        let _ = c.iterate(&[n(1)]);
        run_discovery_round_trip(&mut c, &[(1, vec![0])]);
        let prev = c.curr_tag();
        let _ = c.iterate(&[n(1)]); // completes the round
        run_discovery_round_trip(&mut c, &[(1, vec![0])]);
        let out = c.iterate(&[n(1)]);
        let batch_for_1 = &out.iter().find(|(d, _)| *d == n(1)).unwrap().1;
        let keep_tags = batch_for_1
            .commands
            .iter()
            .find_map(|cmd| match cmd {
                SwitchCommand::UpdateRules { keep_tags, .. } => Some(keep_tags.clone()),
                _ => None,
            })
            .unwrap();
        assert!(keep_tags.contains(&prev) || keep_tags.contains(&c.prev_tag()));

        // The plain variant sends empty keep_tags.
        let mut plain = Controller::new(n(0), config().without_three_tags());
        let _ = plain.iterate(&[n(1)]);
        run_discovery_round_trip(&mut plain, &[(1, vec![0])]);
        let out = plain.iterate(&[n(1)]);
        let batch = &out.iter().find(|(d, _)| *d == n(1)).unwrap().1;
        let keep_tags = batch
            .commands
            .iter()
            .find_map(|cmd| match cmd {
                SwitchCommand::UpdateRules { keep_tags, .. } => Some(keep_tags.clone()),
                _ => None,
            })
            .unwrap();
        assert!(keep_tags.is_empty());
    }

    #[test]
    fn replies_with_stale_tags_are_ignored() {
        let mut c = Controller::new(n(0), config());
        let _ = c.iterate(&[n(1)]);
        c.on_reply(reply_from_switch(1, &[0], &[0], vec![], Tag::new(9, 999)));
        assert_eq!(c.stats().replies_ignored, 1);
        assert_eq!(c.stats().replies_accepted, 0);
        // The bogus tag was observed, so the next generated tag jumps past it.
        run_discovery_round_trip(&mut c, &[(1, vec![0])]);
        let _ = c.iterate(&[n(1)]);
        assert!(c.curr_tag().value() > 999);
    }

    #[test]
    fn controller_answers_queries_with_its_neighborhood_only() {
        let mut c = Controller::new(n(0), config());
        let reply = c.on_query(n(1), Tag::new(1, 5), &[n(2), n(3)]);
        assert_eq!(reply.responder, n(0));
        assert_eq!(reply.neighbors, vec![n(2), n(3)]);
        assert!(reply.managers.is_empty());
        assert!(reply.rules.is_empty());
        assert_eq!(reply.echo_tag, Tag::new(1, 5));
        assert_eq!(c.stats().queries_answered, 1);
    }

    #[test]
    fn first_hop_candidates_follow_the_plan() {
        let mut c = Controller::new(n(0), config());
        let _ = c.iterate(&[n(1)]);
        run_discovery_round_trip(&mut c, &[(1, vec![0, 2]), (2, vec![1])]);
        let _ = c.iterate(&[n(1)]);
        assert_eq!(c.first_hop_candidates(n(2)), vec![n(1)]);
        assert!(c.first_hop_candidates(n(99)).is_empty());
    }

    #[test]
    fn corruption_helpers_change_state() {
        let mut c = Controller::new(n(0), config());
        c.corrupt_tags(Tag::new(5, 50), Tag::new(5, 49));
        assert_eq!(c.curr_tag(), Tag::new(5, 50));
        c.corrupt_inject_reply(reply_from_switch(9, &[10], &[9], vec![], Tag::new(5, 50)));
        assert_eq!(c.reply_db().len(), 1);
        // The algorithm recovers: pruning removes the unreachable bogus responder.
        let _ = c.iterate(&[n(1)]);
        assert_eq!(c.reply_db().len(), 0);
        assert!(c.curr_tag().value() >= 50);
    }
}
