//! Configuration of Renaissance controllers and of the simulation harness.

use sdn_netsim::SimDuration;

/// Which algorithmic variant a controller runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Variant {
    /// The paper's main algorithm (Algorithm 2): memory adaptive — controllers actively
    /// delete stale managers and rules of unreachable controllers, and perform C-resets
    /// when `replyDB` overflows. Recovery from transient faults takes `O(D^2 N)` frames
    /// but post-recovery memory depends on the *actual* number of controllers `nC`.
    #[default]
    MemoryAdaptive,
    /// The Section 8.1 variation: controllers never delete other controllers' state and
    /// never C-reset; stale information is flushed only by the switches' own
    /// least-recently-updated eviction. Recovery takes `Theta(D)` frames, but memory
    /// after stabilization can be `NC / nC` times larger.
    NonAdaptive,
}

/// Configuration shared by every controller of a deployment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ControllerConfig {
    /// The number of controller identifiers in the deployment (`NC`); node identifiers
    /// below this value are controllers, the rest are switches.
    pub n_controllers: usize,
    /// Resilience target: flows must survive up to `kappa` link failures.
    pub kappa: usize,
    /// Maximum number of priority levels (`nprt`) per destination when generating rules.
    /// The paper requires `nprt >= kappa + 1`; `None` uses one level per neighbor
    /// (`nprt = Delta + 1`, the bound of Lemma 3).
    pub max_priorities: Option<usize>,
    /// `maxReplies`: capacity of the controller's `replyDB` before a C-reset
    /// (the paper requires at least `2 (NC + NS)`).
    pub max_replies: usize,
    /// Which algorithmic variant to run.
    pub variant: Variant,
    /// Whether to use the three-tag rule retention of the evaluation prototype
    /// (Section 6.2): rules of the previous round survive one extra round so that
    /// failover paths remain usable while new rules are being installed.
    pub three_tags: bool,
}

impl ControllerConfig {
    /// A configuration suitable for a network with `n_controllers` controllers and
    /// `n_switches` switches, using the paper's defaults (`kappa = 1`, memory adaptive,
    /// three-tag rule retention as in the evaluation prototype).
    pub fn for_network(n_controllers: usize, n_switches: usize) -> Self {
        ControllerConfig {
            n_controllers,
            kappa: 1,
            max_priorities: Some(3),
            // Three tag generations must fit at once: after a round completes, the
            // database still holds the finished round's replies plus the previous
            // round's (pruned only at the *next* iterate), while replies echoing the
            // new tag already stream in. At 2x, those early new-tag replies overflow
            // the database every other round and C-reset an otherwise healthy
            // controller — visible as periodic topology-view collapses that keep a
            // two-controller partition component from ever stabilizing.
            max_replies: 3 * (n_controllers + n_switches).max(1),
            variant: Variant::MemoryAdaptive,
            three_tags: true,
        }
    }

    /// Switches to the non-memory-adaptive Theta(D) variant of Section 8.1.
    pub fn non_adaptive(mut self) -> Self {
        self.variant = Variant::NonAdaptive;
        self
    }

    /// Overrides the resilience target `kappa`.
    pub fn with_kappa(mut self, kappa: usize) -> Self {
        self.kappa = kappa;
        self.max_priorities = self.max_priorities.map(|p| p.max(kappa + 2));
        self
    }

    /// Disables the three-tag retention (plain Algorithm 2 semantics).
    pub fn without_three_tags(mut self) -> Self {
        self.three_tags = false;
        self
    }

    /// Returns `true` when this configuration runs the memory-adaptive main algorithm.
    pub fn is_memory_adaptive(&self) -> bool {
        self.variant == Variant::MemoryAdaptive
    }
}

/// Configuration of the simulation harness wrapping controllers and switches.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HarnessConfig {
    /// Delay between iterations of each controller's do-forever loop and between the
    /// switches' neighborhood-discovery refreshes — the paper's *task delay*
    /// (default 500 ms, Section 6.3).
    pub task_delay: SimDuration,
    /// Time-to-live of in-band control packets, in hops.
    pub packet_ttl: u16,
    /// Seed for the simulator's randomness.
    pub seed: u64,
    /// How long after a failure the neighbors' local discovery notices it
    /// (the Theta detector latency).
    pub detection_delay: SimDuration,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            task_delay: SimDuration::from_millis(500),
            packet_ttl: 2048,
            seed: 7,
            detection_delay: SimDuration::from_millis(100),
        }
    }
}

impl HarnessConfig {
    /// Overrides the task delay (the Figure 7 sweep parameter).
    pub fn with_task_delay(mut self, task_delay: SimDuration) -> Self {
        self.task_delay = task_delay;
        self
    }

    /// Overrides the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_network_respects_paper_bounds() {
        let cfg = ControllerConfig::for_network(3, 20);
        assert_eq!(cfg.n_controllers, 3);
        // Room for three tag generations so round turnover cannot overflow the
        // database (see `for_network`).
        assert!(cfg.max_replies >= 3 * 23);
        assert_eq!(cfg.kappa, 1);
        assert!(cfg.is_memory_adaptive());
        assert!(cfg.three_tags);
    }

    #[test]
    fn builder_style_overrides() {
        let cfg = ControllerConfig::for_network(2, 10)
            .with_kappa(3)
            .non_adaptive()
            .without_three_tags();
        assert_eq!(cfg.kappa, 3);
        assert_eq!(cfg.variant, Variant::NonAdaptive);
        assert!(!cfg.is_memory_adaptive());
        assert!(!cfg.three_tags);
        assert!(cfg.max_priorities.unwrap() >= 4);
    }

    #[test]
    fn harness_defaults_match_paper_setup() {
        let h = HarnessConfig::default();
        assert_eq!(h.task_delay.as_millis(), 500);
        assert!(h.packet_ttl > 0);
        let h2 = h
            .with_task_delay(SimDuration::from_millis(100))
            .with_seed(9);
        assert_eq!(h2.task_delay.as_millis(), 100);
        assert_eq!(h2.seed, 9);
    }
}
