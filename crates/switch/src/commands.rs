//! The controller-to-switch command interface of the abstract switch (paper, Figure 4).
//!
//! Controllers talk to switches in *command batches*: a `newRound` header, a number of
//! update commands, and a trailing `query`. The switch answers queries with a
//! [`QueryReply`] describing its identifier, neighborhood, manager set, and rule set.

use crate::rules::Rule;
use sdn_tags::Tag;
use sdn_topology::NodeId;

/// A single command addressed to an abstract switch's control module.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SwitchCommand {
    /// `<'newRound', t_metaRule>`: updates the controller's meta-rule tag at the switch.
    NewRound {
        /// The new synchronization-round tag.
        tag: Tag,
    },
    /// `<'delMngr', k>`: removes controller `k` from the switch's manager set.
    DelManager {
        /// The controller to remove.
        controller: NodeId,
    },
    /// `<'addMngr', k>`: adds controller `k` to the switch's manager set.
    AddManager {
        /// The controller to add.
        controller: NodeId,
    },
    /// `<'delAllRules', k>`: deletes every rule installed by controller `k`.
    DelAllRules {
        /// The controller whose rules are purged.
        controller: NodeId,
    },
    /// `<'updateRule', newRules>`: replaces the sender's rules with `rules`, keeping any
    /// existing rules whose tag appears in `keep_tags` (empty for plain Algorithm 2;
    /// the previous round's tag for the Section 6.2 evaluation variant).
    UpdateRules {
        /// The new rule set of the sending controller at this switch.
        rules: Vec<Rule>,
        /// Tags of existing rules of the sending controller that must survive.
        keep_tags: Vec<Tag>,
    },
    /// `<'query', t_query>`: asks the switch for its configuration.
    Query {
        /// The round tag to echo in the reply.
        tag: Tag,
    },
}

impl SwitchCommand {
    /// Approximate encoded size in bytes, used for the message-size accounting of the
    /// paper's Lemma 3 and for the simulator's bandwidth model.
    pub fn wire_size(&self) -> usize {
        match self {
            SwitchCommand::NewRound { .. } | SwitchCommand::Query { .. } => 16,
            SwitchCommand::DelManager { .. }
            | SwitchCommand::AddManager { .. }
            | SwitchCommand::DelAllRules { .. } => 8,
            SwitchCommand::UpdateRules { rules, keep_tags } => {
                8 + rules.len() * Rule::WIRE_SIZE + keep_tags.len() * 12
            }
        }
    }
}

/// A sequence of commands sent by one controller to one switch in a single message
/// (the paper aggregates all per-destination commands into one message, line 19).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommandBatch {
    /// The controller that issued the batch.
    pub from: NodeId,
    /// The commands, in execution order.
    pub commands: Vec<SwitchCommand>,
}

impl CommandBatch {
    /// Creates a batch from a controller.
    pub fn new(from: NodeId, commands: Vec<SwitchCommand>) -> Self {
        CommandBatch { from, commands }
    }

    /// The query tag carried by the trailing query command, if any.
    pub fn query_tag(&self) -> Option<Tag> {
        self.commands.iter().rev().find_map(|c| match c {
            SwitchCommand::Query { tag } => Some(*tag),
            _ => None,
        })
    }

    /// Approximate encoded size in bytes.
    pub fn wire_size(&self) -> usize {
        8 + self
            .commands
            .iter()
            .map(SwitchCommand::wire_size)
            .sum::<usize>()
    }
}

/// The switch's (or, degenerately, a controller's) answer to a query command:
/// `<j, Nc(j), manager(j), rules(j)>` plus the echoed round tag.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryReply {
    /// The responding node.
    pub responder: NodeId,
    /// The responder's currently observed neighborhood `Nc(j)`.
    pub neighbors: Vec<NodeId>,
    /// The responder's manager set (empty for controllers).
    pub managers: Vec<NodeId>,
    /// The responder's installed rules (empty for controllers).
    pub rules: Vec<Rule>,
    /// The tag of the query this reply answers (the meta-rule tag of the paper).
    pub echo_tag: Tag,
}

impl QueryReply {
    /// Creates a controller's reply: controllers have no managers and no rules
    /// (paper, Algorithm 2 line 23).
    pub fn from_controller(responder: NodeId, neighbors: Vec<NodeId>, echo_tag: Tag) -> Self {
        QueryReply {
            responder,
            neighbors,
            managers: Vec::new(),
            rules: Vec::new(),
            echo_tag,
        }
    }

    /// Approximate encoded size in bytes.
    pub fn wire_size(&self) -> usize {
        16 + self.neighbors.len() * 4 + self.managers.len() * 4 + self.rules.len() * Rule::WIRE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn sample_rule() -> Rule {
        Rule {
            cid: n(0),
            sid: n(3),
            src: Some(n(0)),
            dst: n(4),
            prt: 1,
            fwd: n(4),
            tag: Tag::new(0, 1),
        }
    }

    #[test]
    fn batch_query_tag_finds_trailing_query() {
        let batch = CommandBatch::new(
            n(0),
            vec![
                SwitchCommand::NewRound {
                    tag: Tag::new(0, 5),
                },
                SwitchCommand::AddManager { controller: n(0) },
                SwitchCommand::Query {
                    tag: Tag::new(0, 5),
                },
            ],
        );
        assert_eq!(batch.query_tag(), Some(Tag::new(0, 5)));
        let no_query =
            CommandBatch::new(n(0), vec![SwitchCommand::AddManager { controller: n(0) }]);
        assert_eq!(no_query.query_tag(), None);
    }

    #[test]
    fn wire_sizes_grow_with_content() {
        let small = SwitchCommand::DelManager { controller: n(1) };
        let update = SwitchCommand::UpdateRules {
            rules: vec![sample_rule(); 10],
            keep_tags: vec![Tag::new(0, 1)],
        };
        assert!(update.wire_size() > small.wire_size());
        let batch = CommandBatch::new(n(0), vec![small, update]);
        assert!(batch.wire_size() > 8);

        let reply = QueryReply {
            responder: n(3),
            neighbors: vec![n(1), n(2)],
            managers: vec![n(0)],
            rules: vec![sample_rule(); 5],
            echo_tag: Tag::new(0, 1),
        };
        let empty_reply = QueryReply::from_controller(n(1), vec![n(2)], Tag::new(0, 1));
        assert!(reply.wire_size() > empty_reply.wire_size());
    }

    #[test]
    fn controller_reply_has_no_configuration() {
        let r = QueryReply::from_controller(n(1), vec![n(5), n(6)], Tag::new(1, 3));
        assert_eq!(r.responder, n(1));
        assert!(r.managers.is_empty());
        assert!(r.rules.is_empty());
        assert_eq!(r.echo_tag, Tag::new(1, 3));
        assert_eq!(r.neighbors, vec![n(5), n(6)]);
    }
}
