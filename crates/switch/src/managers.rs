//! The bounded manager set of an abstract switch.
//!
//! Every switch keeps the set `manager(j)` of controllers that are allowed to manage it
//! (paper, Section 2.1). The set is bounded by `maxManagers`; when a new manager would
//! exceed the bound, the least-recently refreshed manager is evicted (Section 2.1.1),
//! which is what eventually flushes managers left behind by a transient fault.

use sdn_topology::NodeId;

/// Bounded, recency-ordered manager set.
///
/// # Example
///
/// ```
/// use sdn_switch::managers::ManagerSet;
/// use sdn_topology::NodeId;
/// let mut m = ManagerSet::new(2);
/// m.add(NodeId::new(0));
/// m.add(NodeId::new(1));
/// m.add(NodeId::new(2)); // evicts the least recently refreshed (0)
/// assert!(!m.contains(NodeId::new(0)));
/// assert_eq!(m.len(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ManagerSet {
    max_managers: usize,
    /// Most recently refreshed managers are at the back.
    managers: Vec<NodeId>,
    evictions: u64,
}

impl ManagerSet {
    /// Creates an empty manager set with capacity `max_managers`.
    ///
    /// # Panics
    ///
    /// Panics if `max_managers == 0`.
    pub fn new(max_managers: usize) -> Self {
        assert!(
            max_managers > 0,
            "a switch needs room for at least one manager"
        );
        ManagerSet {
            max_managers,
            managers: Vec::new(),
            evictions: 0,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.max_managers
    }

    /// Number of managers currently registered.
    pub fn len(&self) -> usize {
        self.managers.len()
    }

    /// Returns `true` when no manager is registered (an *unmanaged* switch).
    pub fn is_empty(&self) -> bool {
        self.managers.is_empty()
    }

    /// Number of managers evicted because the set was full.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Returns `true` when `controller` currently manages this switch.
    pub fn contains(&self, controller: NodeId) -> bool {
        self.managers.contains(&controller)
    }

    /// Adds (or refreshes) a manager; evicts the least recently refreshed manager when
    /// the set is full. Returns `true` if an eviction happened.
    pub fn add(&mut self, controller: NodeId) -> bool {
        if let Some(pos) = self.managers.iter().position(|&m| m == controller) {
            // Refresh: move to the most-recently-used position.
            self.managers.remove(pos);
            self.managers.push(controller);
            return false;
        }
        let mut evicted = false;
        if self.managers.len() >= self.max_managers {
            self.managers.remove(0);
            self.evictions += 1;
            evicted = true;
        }
        self.managers.push(controller);
        evicted
    }

    /// Removes a manager. Returns `true` if it was present.
    pub fn remove(&mut self, controller: NodeId) -> bool {
        match self.managers.iter().position(|&m| m == controller) {
            Some(pos) => {
                self.managers.remove(pos);
                true
            }
            None => false,
        }
    }

    /// The managers in identifier order (the order reported in query replies).
    pub fn to_sorted_vec(&self) -> Vec<NodeId> {
        let mut out = self.managers.clone();
        out.sort();
        out
    }

    /// Iterates over managers in recency order (least recently refreshed first).
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.managers.iter().copied()
    }

    /// Removes every manager (used to model factory-reset or corrupted switches).
    pub fn clear(&mut self) {
        self.managers.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn add_remove_contains() {
        let mut m = ManagerSet::new(4);
        assert!(m.is_empty());
        m.add(n(1));
        m.add(n(2));
        assert!(m.contains(n(1)));
        assert!(!m.contains(n(3)));
        assert!(m.remove(n(1)));
        assert!(!m.remove(n(1)));
        assert_eq!(m.len(), 1);
        assert_eq!(m.capacity(), 4);
    }

    #[test]
    fn refresh_moves_to_back_and_protects_from_eviction() {
        let mut m = ManagerSet::new(2);
        m.add(n(1));
        m.add(n(2));
        // Refresh 1 so that 2 becomes the eviction victim.
        assert!(!m.add(n(1)));
        assert!(m.add(n(3)));
        assert!(m.contains(n(1)));
        assert!(!m.contains(n(2)));
        assert_eq!(m.evictions(), 1);
    }

    #[test]
    fn sorted_view_is_by_identifier() {
        let mut m = ManagerSet::new(4);
        m.add(n(5));
        m.add(n(1));
        m.add(n(3));
        assert_eq!(m.to_sorted_vec(), vec![n(1), n(3), n(5)]);
        // Recency order differs from identifier order.
        let recency: Vec<_> = m.iter().collect();
        assert_eq!(recency, vec![n(5), n(1), n(3)]);
    }

    #[test]
    fn clear_empties_the_set() {
        let mut m = ManagerSet::new(4);
        m.add(n(1));
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one manager")]
    fn zero_capacity_rejected() {
        let _ = ManagerSet::new(0);
    }
}
