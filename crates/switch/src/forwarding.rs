//! The data-plane forwarding decision: highest-priority applicable rule wins.
//!
//! A rule is *applicable* (paper, Section 2.1) for a packet when it matches the packet's
//! source and destination fields and its out-link is currently operational. Among the
//! applicable rules the one with the highest priority is used — this is how the
//! kappa-fault-resilient failover of Section 2.2.2 happens entirely in the data plane,
//! without waiting for any controller.
//!
//! On top of the paper's rule semantics the decision honours the packet's *visited set*:
//! next hops that the packet has already traversed are skipped, and when nothing remains
//! the caller bounces the packet back to where it came from. This reproduces the
//! data-plane DFS of Borokhovich–Schiff–Schmid (the paper's building block \[6\]), which
//! the prototype realised with OpenFlow fast-failover groups.

use crate::rules::RuleTable;
use sdn_topology::NodeId;

/// Chooses the next hop for a packet `(src, dst)` at a switch with rule table `rules`.
///
/// Selection order:
/// 1. the highest-priority matching rule whose out-link is operational and whose next
///    hop is not in `visited`,
/// 2. otherwise, `dst` itself when it is an operational direct neighbor (the paper's
///    query-by-neighbor functionality, which is what lets a controller bootstrap a
///    switch that has no rules yet),
/// 3. otherwise `None` — the caller decides whether to bounce the packet back or drop it.
pub fn decide<F>(
    rules: &RuleTable,
    src: NodeId,
    dst: NodeId,
    visited: &[NodeId],
    neighbors: &[NodeId],
    is_up: &mut F,
) -> Option<NodeId>
where
    F: FnMut(NodeId) -> bool,
{
    let candidate = rules
        .matching(src, dst)
        .into_iter()
        .map(|r| r.fwd)
        .find(|&hop| !visited.contains(&hop) && neighbors.contains(&hop) && is_up(hop));
    if candidate.is_some() {
        return candidate;
    }
    if neighbors.contains(&dst) && !visited.contains(&dst) && is_up(dst) {
        return Some(dst);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;
    use sdn_tags::Tag;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn rule(src: u32, dst: u32, prt: u8, fwd: u32) -> Rule {
        Rule {
            cid: n(0),
            sid: n(9),
            src: Some(n(src)),
            dst: n(dst),
            prt,
            fwd: n(fwd),
            tag: Tag::new(0, 1),
        }
    }

    fn table(rules: &[Rule]) -> RuleTable {
        let mut t = RuleTable::new(64);
        for r in rules {
            t.insert(*r);
        }
        t
    }

    #[test]
    fn highest_priority_applicable_rule_wins() {
        let t = table(&[rule(0, 5, 1, 3), rule(0, 5, 3, 4), rule(0, 5, 2, 2)]);
        let hop = decide(&t, n(0), n(5), &[], &[n(2), n(3), n(4)], &mut |_| true);
        assert_eq!(hop, Some(n(4)));
    }

    #[test]
    fn failed_out_links_are_skipped() {
        let t = table(&[rule(0, 5, 3, 4), rule(0, 5, 2, 2)]);
        let hop = decide(&t, n(0), n(5), &[], &[n(2), n(4)], &mut |h| h != n(4));
        assert_eq!(hop, Some(n(2)));
    }

    #[test]
    fn visited_hops_are_skipped_for_dfs_backtracking() {
        let t = table(&[rule(0, 5, 3, 4), rule(0, 5, 2, 2)]);
        let hop = decide(&t, n(0), n(5), &[n(4)], &[n(2), n(4)], &mut |_| true);
        assert_eq!(hop, Some(n(2)));
        let stuck = decide(&t, n(0), n(5), &[n(2), n(4)], &[n(2), n(4)], &mut |_| true);
        assert_eq!(stuck, None);
    }

    #[test]
    fn rules_pointing_to_non_neighbors_are_ignored() {
        // A stale rule pointing to a node that is no longer adjacent must not be used.
        let t = table(&[rule(0, 5, 3, 7)]);
        let hop = decide(&t, n(0), n(5), &[], &[n(2)], &mut |_| true);
        assert_eq!(hop, None);
    }

    #[test]
    fn direct_neighbor_fallback_only_when_no_rule_applies() {
        let t = table(&[]);
        // dst 5 is a direct operational neighbor: forward straight to it.
        assert_eq!(
            decide(&t, n(0), n(5), &[], &[n(5), n(6)], &mut |_| true),
            Some(n(5))
        );
        // ... but not when its link is down or it was already visited.
        assert_eq!(
            decide(&t, n(0), n(5), &[], &[n(5)], &mut |h| h != n(5)),
            None
        );
        assert_eq!(
            decide(&t, n(0), n(5), &[n(5)], &[n(5)], &mut |_| true),
            None
        );
    }

    #[test]
    fn non_matching_rules_never_fire() {
        let t = table(&[rule(1, 5, 3, 4)]);
        // Packet source differs from the rule's match.
        assert_eq!(decide(&t, n(0), n(5), &[], &[n(4)], &mut |_| true), None);
    }
}
