//! The abstract SDN switch of Renaissance (paper, Section 2.1).
//!
//! This crate provides the switch-side half of the control plane:
//!
//! * [`rules`] — prioritized match-action rules and the bounded, LRU-evicting rule table,
//! * [`managers`] — the bounded manager set,
//! * [`commands`] — the controller-to-switch command batches and query replies,
//! * [`switch`] — the [`AbstractSwitch`] control module that applies command batches
//!   atomically and answers configuration queries,
//! * [`forwarding`] — the data-plane forwarding decision (highest-priority applicable
//!   rule, fast-failover on non-operational out-links, DFS bounce-back support).
//!
//! The switch is intentionally dumb: it never computes routes, never ages rules with
//! timeouts, and keeps whatever (possibly corrupted) state it woke up with until a
//! controller overwrites it — the exact model the paper's self-stabilization proof is
//! written against.
//!
//! # Example
//!
//! ```
//! use sdn_switch::{AbstractSwitch, CommandBatch, Rule, SwitchCommand, SwitchConfig};
//! use sdn_tags::Tag;
//! use sdn_topology::NodeId;
//!
//! let mut sw = AbstractSwitch::new(NodeId::new(3), SwitchConfig::default());
//! let tag = Tag::new(0, 1);
//! let rule = Rule {
//!     cid: NodeId::new(0), sid: NodeId::new(3),
//!     src: Some(NodeId::new(0)), dst: NodeId::new(7),
//!     prt: 2, fwd: NodeId::new(4), tag,
//! };
//! let batch = CommandBatch::new(NodeId::new(0), vec![
//!     SwitchCommand::NewRound { tag },
//!     SwitchCommand::AddManager { controller: NodeId::new(0) },
//!     SwitchCommand::UpdateRules { rules: vec![rule], keep_tags: vec![] },
//!     SwitchCommand::Query { tag },
//! ]);
//! let reply = sw.apply_batch(&batch, &[NodeId::new(2), NodeId::new(4)]).unwrap();
//! assert_eq!(reply.rules.len(), 1);
//! let hop = sw.next_hop(NodeId::new(0), NodeId::new(7), &[], &[NodeId::new(2), NodeId::new(4)], |_| true);
//! assert_eq!(hop, Some(NodeId::new(4)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commands;
pub mod forwarding;
pub mod managers;
pub mod rules;
pub mod switch;

pub use commands::{CommandBatch, QueryReply, SwitchCommand};
pub use managers::ManagerSet;
pub use rules::{Rule, RuleTable};
pub use switch::{AbstractSwitch, SwitchConfig, SwitchStats};
