//! Packet-forwarding rules and the bounded rule table of the abstract switch.
//!
//! A rule is the tuple `<cID, sID, src, dest, prt, fwd, tag>` of the paper (Figure 4):
//! controller that installed it, switch that stores it, matched source and destination,
//! priority, forwarding next hop, and the synchronization-round tag. The table is
//! bounded by `maxRules` and evicts the least-recently-updated rules first, which is the
//! memory-management behaviour the paper requires in Section 2.1.1.

use sdn_tags::Tag;
use sdn_topology::NodeId;
use std::collections::BTreeMap;

/// A single match-action packet-forwarding rule.
///
/// The source match is optional: `None` is a wildcard (the paper explicitly allows
/// wildcard matches, Section 2.1), which is what Renaissance's `myRules()` uses — a
/// flow's forwarding decision only depends on the destination, so one wildcard rule per
/// destination and priority level replaces a rule per (source, destination) pair and
/// keeps the table within the paper's Lemma 1 bound.
///
/// # Example
///
/// ```
/// use sdn_switch::rules::Rule;
/// use sdn_tags::Tag;
/// use sdn_topology::NodeId;
/// let r = Rule {
///     cid: NodeId::new(0),
///     sid: NodeId::new(5),
///     src: Some(NodeId::new(0)),
///     dst: NodeId::new(9),
///     prt: 3,
///     fwd: NodeId::new(6),
///     tag: Tag::new(0, 1),
/// };
/// assert!(r.matches(NodeId::new(0), NodeId::new(9)));
/// assert!(!r.matches(NodeId::new(9), NodeId::new(0)));
/// let wildcard = Rule { src: None, ..r };
/// assert!(wildcard.matches(NodeId::new(7), NodeId::new(9)));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rule {
    /// The controller that installed the rule (`cID`).
    pub cid: NodeId,
    /// The switch that stores the rule (`sID`).
    pub sid: NodeId,
    /// Matched packet source field; `None` is a wildcard.
    pub src: Option<NodeId>,
    /// Matched packet destination field.
    pub dst: NodeId,
    /// Rule priority; larger values are matched first.
    pub prt: u8,
    /// The neighbor the packet is forwarded to when this rule applies.
    pub fwd: NodeId,
    /// The synchronization-round tag the rule was installed with.
    pub tag: Tag,
}

impl Rule {
    /// Approximate encoded size of one rule in bytes (used for message-size accounting,
    /// cf. the paper's Lemma 3).
    pub const WIRE_SIZE: usize = 24;

    /// Returns `true` when the rule matches a packet with the given source and
    /// destination header fields.
    pub fn matches(&self, src: NodeId, dst: NodeId) -> bool {
        self.src.is_none_or(|s| s == src) && self.dst == dst
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct StoredRule {
    rule: Rule,
    /// Monotonic freshness stamp; smaller means less recently updated.
    stamp: u64,
}

/// Key identifying a rule slot: one slot per (destination, source, priority, installer).
type RuleKey = (NodeId, Option<NodeId>, u8, NodeId);

fn key_of(rule: &Rule) -> RuleKey {
    (rule.dst, rule.src, rule.prt, rule.cid)
}

/// The bounded rule table of an abstract switch.
///
/// Capacity is `max_rules`; inserting into a full table evicts the least-recently
/// updated rule (the paper's clogged-memory policy). Re-installing an existing rule
/// refreshes its stamp, so the rules of live controllers — which refresh every round —
/// are never evicted in favour of stale ones.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuleTable {
    max_rules: usize,
    rules: BTreeMap<RuleKey, StoredRule>,
    next_stamp: u64,
    evictions: u64,
}

impl RuleTable {
    /// Creates an empty table with capacity `max_rules`.
    ///
    /// # Panics
    ///
    /// Panics if `max_rules == 0`.
    pub fn new(max_rules: usize) -> Self {
        assert!(max_rules > 0, "a switch needs room for at least one rule");
        RuleTable {
            max_rules,
            rules: BTreeMap::new(),
            next_stamp: 0,
            evictions: 0,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.max_rules
    }

    /// Number of rules currently stored.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Returns `true` when no rules are stored.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Number of rules evicted due to a full table since creation.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Inserts (or refreshes) a rule, evicting the least-recently-updated rule if the
    /// table is full. Returns `true` if an eviction happened.
    pub fn insert(&mut self, rule: Rule) -> bool {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        let key = key_of(&rule);
        let is_new = !self.rules.contains_key(&key);
        let mut evicted = false;
        if is_new && self.rules.len() >= self.max_rules {
            // Evict the least recently updated rule.
            if let Some((&victim, _)) = self.rules.iter().min_by_key(|(_, s)| s.stamp) {
                self.rules.remove(&victim);
                self.evictions += 1;
                evicted = true;
            }
        }
        self.rules.insert(key, StoredRule { rule, stamp });
        evicted
    }

    /// Removes every rule installed by `controller`. Returns how many were removed.
    pub fn delete_controller(&mut self, controller: NodeId) -> usize {
        let before = self.rules.len();
        self.rules.retain(|_, s| s.rule.cid != controller);
        before - self.rules.len()
    }

    /// Replaces the rules of `controller`: existing rules of that controller whose tag
    /// is *not* in `keep_tags` are removed, then `new_rules` are inserted.
    ///
    /// This implements the `updateRule` command; plain Algorithm 2 passes an empty
    /// `keep_tags` (replace everything), while the Section 6.2 evaluation variant keeps
    /// the previous round's tag alive for one extra round.
    ///
    /// Returns the number of rules removed.
    pub fn replace_controller_rules(
        &mut self,
        controller: NodeId,
        new_rules: impl IntoIterator<Item = Rule>,
        keep_tags: &[Tag],
    ) -> usize {
        let before = self.rules.len();
        self.rules
            .retain(|_, s| s.rule.cid != controller || keep_tags.contains(&s.rule.tag));
        let removed = before - self.rules.len();
        for rule in new_rules {
            self.insert(rule);
        }
        removed
    }

    /// All stored rules, in key order.
    pub fn iter(&self) -> impl Iterator<Item = &Rule> + '_ {
        self.rules.values().map(|s| &s.rule)
    }

    /// All rules installed by `controller`.
    pub fn rules_of(&self, controller: NodeId) -> Vec<Rule> {
        self.iter()
            .filter(|r| r.cid == controller)
            .copied()
            .collect()
    }

    /// The set of controllers that currently have at least one rule in the table.
    pub fn controllers_with_rules(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self.iter().map(|r| r.cid).collect();
        out.sort();
        out.dedup();
        out
    }

    /// The rules matching a packet `(src, dst)`, sorted by decreasing priority.
    pub fn matching(&self, src: NodeId, dst: NodeId) -> Vec<Rule> {
        let lo: RuleKey = (dst, None, 0, NodeId::new(0));
        let hi: RuleKey = (
            dst,
            Some(NodeId::new(u32::MAX)),
            u8::MAX,
            NodeId::new(u32::MAX),
        );
        let mut out: Vec<Rule> = self
            .rules
            .range(lo..=hi)
            .map(|(_, s)| s.rule)
            .filter(|r| r.matches(src, dst))
            .collect();
        out.sort_by(|a, b| b.prt.cmp(&a.prt).then(a.fwd.cmp(&b.fwd)));
        out
    }

    /// Removes every rule (used by tests that model a factory-reset switch).
    pub fn clear(&mut self) {
        self.rules.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn rule(cid: u32, src: u32, dst: u32, prt: u8, fwd: u32, tag: u64) -> Rule {
        Rule {
            cid: n(cid),
            sid: n(99),
            src: Some(n(src)),
            dst: n(dst),
            prt,
            fwd: n(fwd),
            tag: Tag::new(cid, tag),
        }
    }

    #[test]
    fn insert_and_match_by_priority() {
        let mut t = RuleTable::new(100);
        t.insert(rule(0, 0, 9, 1, 5, 1));
        t.insert(rule(0, 0, 9, 3, 6, 1));
        t.insert(rule(0, 0, 9, 2, 7, 1));
        t.insert(rule(0, 1, 9, 7, 8, 1)); // different source, must not match
        let m = t.matching(n(0), n(9));
        assert_eq!(m.len(), 3);
        assert_eq!(m[0].prt, 3);
        assert_eq!(m[1].prt, 2);
        assert_eq!(m[2].prt, 1);
        assert!(t.matching(n(2), n(9)).is_empty());
    }

    #[test]
    fn reinserting_same_slot_does_not_grow_table() {
        let mut t = RuleTable::new(10);
        t.insert(rule(0, 0, 9, 1, 5, 1));
        t.insert(rule(0, 0, 9, 1, 6, 2)); // same key, new fwd/tag
        assert_eq!(t.len(), 1);
        assert_eq!(t.matching(n(0), n(9))[0].fwd, n(6));
    }

    #[test]
    fn full_table_evicts_least_recently_updated() {
        let mut t = RuleTable::new(2);
        t.insert(rule(0, 0, 1, 1, 5, 1));
        t.insert(rule(0, 0, 2, 1, 5, 1));
        // Refresh the first rule so the second becomes the LRU victim.
        t.insert(rule(0, 0, 1, 1, 5, 2));
        let evicted = t.insert(rule(0, 0, 3, 1, 5, 1));
        assert!(evicted);
        assert_eq!(t.len(), 2);
        assert_eq!(t.evictions(), 1);
        assert!(t.matching(n(0), n(2)).is_empty(), "LRU rule evicted");
        assert!(!t.matching(n(0), n(1)).is_empty(), "refreshed rule kept");
    }

    #[test]
    fn delete_controller_removes_only_its_rules() {
        let mut t = RuleTable::new(10);
        t.insert(rule(0, 0, 1, 1, 5, 1));
        t.insert(rule(1, 1, 2, 1, 5, 1));
        t.insert(rule(0, 0, 2, 1, 5, 1));
        assert_eq!(t.delete_controller(n(0)), 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.controllers_with_rules(), vec![n(1)]);
        assert_eq!(t.delete_controller(n(0)), 0);
    }

    #[test]
    fn replace_controller_rules_respects_keep_tags() {
        let mut t = RuleTable::new(10);
        t.insert(rule(0, 0, 1, 1, 5, 1)); // tag 1
        t.insert(rule(0, 0, 2, 1, 5, 2)); // tag 2
        t.insert(rule(1, 1, 2, 1, 5, 7)); // other controller
        let removed = t.replace_controller_rules(n(0), [rule(0, 0, 3, 1, 5, 3)], &[Tag::new(0, 2)]);
        assert_eq!(removed, 1, "only the tag-1 rule is dropped");
        let of0 = t.rules_of(n(0));
        assert_eq!(of0.len(), 2);
        assert!(of0.iter().any(|r| r.tag == Tag::new(0, 2)));
        assert!(of0.iter().any(|r| r.tag == Tag::new(0, 3)));
        assert_eq!(t.rules_of(n(1)).len(), 1);
    }

    #[test]
    fn rules_of_and_clear() {
        let mut t = RuleTable::new(10);
        t.insert(rule(2, 0, 1, 1, 5, 1));
        assert_eq!(t.rules_of(n(2)).len(), 1);
        assert_eq!(t.capacity(), 10);
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn rule_matching_predicate() {
        let r = rule(0, 3, 4, 1, 5, 1);
        assert!(r.matches(n(3), n(4)));
        assert!(!r.matches(n(4), n(3)));
        #[allow(clippy::assertions_on_constants)]
        {
            assert!(Rule::WIRE_SIZE > 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rule")]
    fn zero_capacity_rejected() {
        let _ = RuleTable::new(0);
    }
}
