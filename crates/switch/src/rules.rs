//! Packet-forwarding rules and the bounded rule table of the abstract switch.
//!
//! A rule is the tuple `<cID, sID, src, dest, prt, fwd, tag>` of the paper (Figure 4):
//! controller that installed it, switch that stores it, matched source and destination,
//! priority, forwarding next hop, and the synchronization-round tag. The table is
//! bounded by `maxRules` and evicts the least-recently-updated rules first, which is the
//! memory-management behaviour the paper requires in Section 2.1.1.

use sdn_tags::Tag;
use sdn_topology::NodeId;

/// A single match-action packet-forwarding rule.
///
/// The source match is optional: `None` is a wildcard (the paper explicitly allows
/// wildcard matches, Section 2.1), which is what Renaissance's `myRules()` uses — a
/// flow's forwarding decision only depends on the destination, so one wildcard rule per
/// destination and priority level replaces a rule per (source, destination) pair and
/// keeps the table within the paper's Lemma 1 bound.
///
/// # Example
///
/// ```
/// use sdn_switch::rules::Rule;
/// use sdn_tags::Tag;
/// use sdn_topology::NodeId;
/// let r = Rule {
///     cid: NodeId::new(0),
///     sid: NodeId::new(5),
///     src: Some(NodeId::new(0)),
///     dst: NodeId::new(9),
///     prt: 3,
///     fwd: NodeId::new(6),
///     tag: Tag::new(0, 1),
/// };
/// assert!(r.matches(NodeId::new(0), NodeId::new(9)));
/// assert!(!r.matches(NodeId::new(9), NodeId::new(0)));
/// let wildcard = Rule { src: None, ..r };
/// assert!(wildcard.matches(NodeId::new(7), NodeId::new(9)));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rule {
    /// The controller that installed the rule (`cID`).
    pub cid: NodeId,
    /// The switch that stores the rule (`sID`).
    pub sid: NodeId,
    /// Matched packet source field; `None` is a wildcard.
    pub src: Option<NodeId>,
    /// Matched packet destination field.
    pub dst: NodeId,
    /// Rule priority; larger values are matched first.
    pub prt: u8,
    /// The neighbor the packet is forwarded to when this rule applies.
    pub fwd: NodeId,
    /// The synchronization-round tag the rule was installed with.
    pub tag: Tag,
}

impl Rule {
    /// Approximate encoded size of one rule in bytes (used for message-size accounting,
    /// cf. the paper's Lemma 3).
    pub const WIRE_SIZE: usize = 24;

    /// Returns `true` when the rule matches a packet with the given source and
    /// destination header fields.
    pub fn matches(&self, src: NodeId, dst: NodeId) -> bool {
        self.src.is_none_or(|s| s == src) && self.dst == dst
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct StoredRule {
    rule: Rule,
    /// Monotonic freshness stamp; smaller means less recently updated.
    stamp: u64,
}

/// Key identifying a rule slot: one slot per (installer, destination, source, priority).
///
/// The installer comes first so that one controller's rules form a single contiguous
/// block (the per-round `updateRule` replacement is a splice of that block), and the
/// priority is reversed so that `myRules()` — which emits destinations ascending with
/// priorities descending — produces rule lists already in key order.
type RuleKey = (NodeId, NodeId, Option<NodeId>, std::cmp::Reverse<u8>);

fn key_of(rule: &Rule) -> RuleKey {
    (rule.cid, rule.dst, rule.src, std::cmp::Reverse(rule.prt))
}

/// The bounded rule table of an abstract switch.
///
/// Capacity is `max_rules`; inserting into a full table evicts the least-recently
/// updated rule (the paper's clogged-memory policy). Re-installing an existing rule
/// refreshes its stamp, so the rules of live controllers — which refresh every round —
/// are never evicted in favour of stale ones.
///
/// Rules are stored as a flat vector sorted by [`RuleKey`], which keeps the
/// per-round `updateRule` command (a wholesale replacement of one controller's
/// rules) a splice of one contiguous block instead of per-rule tree operations —
/// the dominant cost of the simulation's recovery phases.
#[derive(Clone, Debug)]
pub struct RuleTable {
    max_rules: usize,
    /// Sorted by `key_of`, one entry per key.
    rules: Vec<StoredRule>,
    next_stamp: u64,
    evictions: u64,
    /// Reusable buffers for `replace_controller_rules` (never observable).
    staged: Vec<StoredRule>,
    scratch: Vec<StoredRule>,
}

impl PartialEq for RuleTable {
    fn eq(&self, other: &Self) -> bool {
        // The merge buffers are scratch space: two tables with the same rules,
        // stamps, and counters are equal regardless of buffer capacity.
        self.max_rules == other.max_rules
            && self.rules == other.rules
            && self.next_stamp == other.next_stamp
            && self.evictions == other.evictions
    }
}

impl Eq for RuleTable {}

impl RuleTable {
    /// Creates an empty table with capacity `max_rules`.
    ///
    /// # Panics
    ///
    /// Panics if `max_rules == 0`.
    pub fn new(max_rules: usize) -> Self {
        assert!(max_rules > 0, "a switch needs room for at least one rule");
        RuleTable {
            max_rules,
            rules: Vec::new(),
            next_stamp: 0,
            evictions: 0,
            staged: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.max_rules
    }

    /// Number of rules currently stored.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Returns `true` when no rules are stored.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Number of rules evicted due to a full table since creation.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Index of `key` in the sorted rule vector, or the insertion point.
    fn position(&self, key: &RuleKey) -> Result<usize, usize> {
        self.rules.binary_search_by(|s| key_of(&s.rule).cmp(key))
    }

    /// Inserts (or refreshes) a rule, evicting the least-recently-updated rule if the
    /// table is full. Returns `true` if an eviction happened.
    pub fn insert(&mut self, rule: Rule) -> bool {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        match self.position(&key_of(&rule)) {
            Ok(at) => {
                self.rules[at] = StoredRule { rule, stamp };
                false
            }
            Err(mut at) => {
                let mut evicted = false;
                if self.rules.len() >= self.max_rules {
                    // Evict the least recently updated rule (stamps are unique,
                    // so the victim is unambiguous).
                    if let Some(victim) = (0..self.rules.len()).min_by_key(|&i| self.rules[i].stamp)
                    {
                        self.rules.remove(victim);
                        self.evictions += 1;
                        evicted = true;
                        if victim < at {
                            at -= 1;
                        }
                    }
                }
                self.rules.insert(at, StoredRule { rule, stamp });
                evicted
            }
        }
    }

    /// The contiguous index range holding `controller`'s rules.
    fn controller_range(&self, controller: NodeId) -> (usize, usize) {
        let lo = self.rules.partition_point(|s| s.rule.cid < controller);
        let hi = lo + self.rules[lo..].partition_point(|s| s.rule.cid <= controller);
        (lo, hi)
    }

    /// Removes every rule installed by `controller`. Returns how many were removed.
    pub fn delete_controller(&mut self, controller: NodeId) -> usize {
        let (lo, hi) = self.controller_range(controller);
        self.rules.drain(lo..hi);
        hi - lo
    }

    /// Replaces the rules of `controller`: existing rules of that controller whose tag
    /// is *not* in `keep_tags` are removed, then `new_rules` are inserted.
    ///
    /// This implements the `updateRule` command; plain Algorithm 2 passes an empty
    /// `keep_tags` (replace everything), while the Section 6.2 evaluation variant keeps
    /// the previous round's tag alive for one extra round.
    ///
    /// Returns the number of rules removed.
    pub fn replace_controller_rules(
        &mut self,
        controller: NodeId,
        new_rules: impl IntoIterator<Item = Rule>,
        keep_tags: &[Tag],
    ) -> usize {
        // Stamp the incoming rules in arrival order — one stamp per rule, exactly as
        // repeated `insert` calls would consume them (including overwritten duplicates).
        let mut all_same_cid = true;
        let mut staged = std::mem::take(&mut self.staged);
        staged.clear();
        staged.extend(new_rules.into_iter().map(|rule| {
            let stamp = self.next_stamp;
            self.next_stamp += 1;
            all_same_cid &= rule.cid == controller;
            StoredRule { rule, stamp }
        }));

        let (lo, hi) = self.controller_range(controller);
        let keep = |s: &StoredRule| keep_tags.contains(&s.rule.tag);
        let removed = self.rules[lo..hi].iter().filter(|s| !keep(s)).count();

        if !all_same_cid || self.rules.len() - removed + staged.len() > self.max_rules {
            // Rules for foreign controllers land outside the block, and near capacity
            // evictions may interleave with the insertions — fall back to the
            // one-at-a-time path to keep the sequence exact. The stamps were already
            // consumed above, so bypass `insert`'s stamp counter.
            self.rules
                .retain(|s| s.rule.cid != controller || keep_tags.contains(&s.rule.tag));
            for s in staged.drain(..) {
                self.insert_stamped(s);
            }
            self.staged = staged;
            return removed;
        }

        // Fast path: every incoming rule lands inside the controller's block and the
        // table cannot reach capacity mid-way, so no eviction can happen and sequential
        // insertion reduces to a sorted merge of the block. `myRules()` already emits
        // in key order; arbitrary callers pay a stable sort plus a keep-last dedup
        // (matching the overwrite-on-reinsert semantics of `insert`).
        if !staged.is_sorted_by(|a, b| key_of(&a.rule) <= key_of(&b.rule)) {
            staged.sort_by_key(|s| key_of(&s.rule));
        }
        staged.dedup_by(|later, kept| {
            if key_of(&later.rule) == key_of(&kept.rule) {
                *kept = *later;
                true
            } else {
                false
            }
        });
        let mut block = std::mem::take(&mut self.scratch);
        block.clear();
        let mut old = lo;
        for s in staged.drain(..) {
            let key = key_of(&s.rule);
            while old < hi && key_of(&self.rules[old].rule) < key {
                if keep(&self.rules[old]) {
                    block.push(self.rules[old]);
                }
                old += 1;
            }
            if old < hi && key_of(&self.rules[old].rule) == key {
                old += 1; // overwritten by the incoming rule
            }
            block.push(s);
        }
        while old < hi {
            if keep(&self.rules[old]) {
                block.push(self.rules[old]);
            }
            old += 1;
        }
        if block.len() == hi - lo {
            self.rules[lo..hi].copy_from_slice(&block);
        } else {
            self.rules.splice(lo..hi, block.iter().copied());
        }
        block.clear();
        self.scratch = block;
        self.staged = staged;
        removed
    }

    /// Inserts a rule whose stamp was already drawn from the counter; shares the
    /// eviction logic with [`RuleTable::insert`].
    fn insert_stamped(&mut self, stored: StoredRule) {
        match self.position(&key_of(&stored.rule)) {
            Ok(at) => self.rules[at] = stored,
            Err(mut at) => {
                if self.rules.len() >= self.max_rules {
                    if let Some(victim) = (0..self.rules.len()).min_by_key(|&i| self.rules[i].stamp)
                    {
                        self.rules.remove(victim);
                        self.evictions += 1;
                        if victim < at {
                            at -= 1;
                        }
                    }
                }
                self.rules.insert(at, stored);
            }
        }
    }

    /// All stored rules, in key order.
    pub fn iter(&self) -> impl Iterator<Item = &Rule> + '_ {
        self.rules.iter().map(|s| &s.rule)
    }

    /// All rules installed by `controller`.
    pub fn rules_of(&self, controller: NodeId) -> Vec<Rule> {
        let (lo, hi) = self.controller_range(controller);
        self.rules[lo..hi].iter().map(|s| s.rule).collect()
    }

    /// The set of controllers that currently have at least one rule in the table.
    pub fn controllers_with_rules(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self.iter().map(|r| r.cid).collect();
        out.sort();
        out.dedup();
        out
    }

    /// The rules matching a packet `(src, dst)`, sorted by decreasing priority.
    pub fn matching(&self, src: NodeId, dst: NodeId) -> Vec<Rule> {
        // One contiguous sub-block per installing controller: walk the controller
        // blocks (a handful at most) and binary-search the destination inside each.
        let mut out: Vec<Rule> = Vec::new();
        let mut i = 0;
        while i < self.rules.len() {
            let cid = self.rules[i].rule.cid;
            let run_end = i + self.rules[i..].partition_point(|s| s.rule.cid <= cid);
            let run = &self.rules[i..run_end];
            let lo = i + run.partition_point(|s| s.rule.dst < dst);
            let hi = i + run.partition_point(|s| s.rule.dst <= dst);
            out.extend(
                self.rules[lo..hi]
                    .iter()
                    .map(|s| s.rule)
                    .filter(|r| r.matches(src, dst)),
            );
            i = run_end;
        }
        out.sort_by(|a, b| b.prt.cmp(&a.prt).then(a.fwd.cmp(&b.fwd)));
        out
    }

    /// Removes every rule (used by tests that model a factory-reset switch).
    pub fn clear(&mut self) {
        self.rules.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn rule(cid: u32, src: u32, dst: u32, prt: u8, fwd: u32, tag: u64) -> Rule {
        Rule {
            cid: n(cid),
            sid: n(99),
            src: Some(n(src)),
            dst: n(dst),
            prt,
            fwd: n(fwd),
            tag: Tag::new(cid, tag),
        }
    }

    #[test]
    fn insert_and_match_by_priority() {
        let mut t = RuleTable::new(100);
        t.insert(rule(0, 0, 9, 1, 5, 1));
        t.insert(rule(0, 0, 9, 3, 6, 1));
        t.insert(rule(0, 0, 9, 2, 7, 1));
        t.insert(rule(0, 1, 9, 7, 8, 1)); // different source, must not match
        let m = t.matching(n(0), n(9));
        assert_eq!(m.len(), 3);
        assert_eq!(m[0].prt, 3);
        assert_eq!(m[1].prt, 2);
        assert_eq!(m[2].prt, 1);
        assert!(t.matching(n(2), n(9)).is_empty());
    }

    #[test]
    fn reinserting_same_slot_does_not_grow_table() {
        let mut t = RuleTable::new(10);
        t.insert(rule(0, 0, 9, 1, 5, 1));
        t.insert(rule(0, 0, 9, 1, 6, 2)); // same key, new fwd/tag
        assert_eq!(t.len(), 1);
        assert_eq!(t.matching(n(0), n(9))[0].fwd, n(6));
    }

    #[test]
    fn full_table_evicts_least_recently_updated() {
        let mut t = RuleTable::new(2);
        t.insert(rule(0, 0, 1, 1, 5, 1));
        t.insert(rule(0, 0, 2, 1, 5, 1));
        // Refresh the first rule so the second becomes the LRU victim.
        t.insert(rule(0, 0, 1, 1, 5, 2));
        let evicted = t.insert(rule(0, 0, 3, 1, 5, 1));
        assert!(evicted);
        assert_eq!(t.len(), 2);
        assert_eq!(t.evictions(), 1);
        assert!(t.matching(n(0), n(2)).is_empty(), "LRU rule evicted");
        assert!(!t.matching(n(0), n(1)).is_empty(), "refreshed rule kept");
    }

    #[test]
    fn delete_controller_removes_only_its_rules() {
        let mut t = RuleTable::new(10);
        t.insert(rule(0, 0, 1, 1, 5, 1));
        t.insert(rule(1, 1, 2, 1, 5, 1));
        t.insert(rule(0, 0, 2, 1, 5, 1));
        assert_eq!(t.delete_controller(n(0)), 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.controllers_with_rules(), vec![n(1)]);
        assert_eq!(t.delete_controller(n(0)), 0);
    }

    #[test]
    fn replace_controller_rules_respects_keep_tags() {
        let mut t = RuleTable::new(10);
        t.insert(rule(0, 0, 1, 1, 5, 1)); // tag 1
        t.insert(rule(0, 0, 2, 1, 5, 2)); // tag 2
        t.insert(rule(1, 1, 2, 1, 5, 7)); // other controller
        let removed = t.replace_controller_rules(n(0), [rule(0, 0, 3, 1, 5, 3)], &[Tag::new(0, 2)]);
        assert_eq!(removed, 1, "only the tag-1 rule is dropped");
        let of0 = t.rules_of(n(0));
        assert_eq!(of0.len(), 2);
        assert!(of0.iter().any(|r| r.tag == Tag::new(0, 2)));
        assert!(of0.iter().any(|r| r.tag == Tag::new(0, 3)));
        assert_eq!(t.rules_of(n(1)).len(), 1);
    }

    #[test]
    fn rules_of_and_clear() {
        let mut t = RuleTable::new(10);
        t.insert(rule(2, 0, 1, 1, 5, 1));
        assert_eq!(t.rules_of(n(2)).len(), 1);
        assert_eq!(t.capacity(), 10);
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn rule_matching_predicate() {
        let r = rule(0, 3, 4, 1, 5, 1);
        assert!(r.matches(n(3), n(4)));
        assert!(!r.matches(n(4), n(3)));
        #[allow(clippy::assertions_on_constants)]
        {
            assert!(Rule::WIRE_SIZE > 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rule")]
    fn zero_capacity_rejected() {
        let _ = RuleTable::new(0);
    }
}
