//! The abstract SDN switch control module (paper, Section 2.1.1).
//!
//! The abstract switch is deliberately simpler than an OpenFlow switch: it stores
//! match-action rules and a manager set, supports the equal-roles multi-controller
//! model, processes command batches atomically (one batch per step, Section 3.2), and
//! answers configuration queries. It performs no computation of its own — everything it
//! knows was installed by some controller, which is exactly the constraint that makes
//! the self-stabilization proof of the paper non-trivial.

use crate::commands::{CommandBatch, QueryReply, SwitchCommand};
use crate::managers::ManagerSet;
use crate::rules::{Rule, RuleTable};
use sdn_tags::Tag;
use sdn_topology::NodeId;
use std::collections::BTreeMap;

/// Capacity configuration of an abstract switch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SwitchConfig {
    /// Maximum number of packet-forwarding rules (`maxRules`).
    pub max_rules: usize,
    /// Maximum number of managers (`maxManagers`).
    pub max_managers: usize,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            max_rules: 100_000,
            max_managers: 64,
        }
    }
}

impl SwitchConfig {
    /// The capacity the paper's Lemma 1 prescribes for a deployment with `n_controllers`
    /// controllers, `n_nodes` total nodes, and `nprt` priority levels:
    /// `maxRules >= NC * (NC + NS - 1) * nprt` and `maxManagers >= NC`.
    pub fn for_network(n_controllers: usize, n_nodes: usize, nprt: usize) -> Self {
        SwitchConfig {
            max_rules: n_controllers
                .max(1)
                .saturating_mul(n_nodes.saturating_sub(1).max(1))
                .saturating_mul(nprt.max(1))
                // Bidirectional flows double the per-destination rule count.
                .saturating_mul(2),
            max_managers: n_controllers.max(1),
        }
    }
}

/// Counters describing what a switch has done; used by tests and the overhead benches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SwitchStats {
    /// Command batches applied.
    pub batches_applied: u64,
    /// Queries answered.
    pub queries_answered: u64,
    /// Rules removed by `delAllRules` or replaced by `updateRule`.
    pub rules_deleted: u64,
    /// Managers removed by `delMngr`.
    pub managers_deleted: u64,
    /// Packets forwarded through the data plane of this switch.
    pub packets_forwarded: u64,
    /// Packets dropped because no applicable rule existed.
    pub packets_dropped: u64,
}

/// The state of one abstract SDN switch.
///
/// # Example
///
/// ```
/// use sdn_switch::{AbstractSwitch, CommandBatch, SwitchCommand, SwitchConfig};
/// use sdn_tags::Tag;
/// use sdn_topology::NodeId;
///
/// let mut sw = AbstractSwitch::new(NodeId::new(5), SwitchConfig::default());
/// let tag = Tag::new(0, 1);
/// let batch = CommandBatch::new(NodeId::new(0), vec![
///     SwitchCommand::NewRound { tag },
///     SwitchCommand::AddManager { controller: NodeId::new(0) },
///     SwitchCommand::Query { tag },
/// ]);
/// let reply = sw.apply_batch(&batch, &[NodeId::new(4), NodeId::new(6)]).unwrap();
/// assert_eq!(reply.responder, NodeId::new(5));
/// assert_eq!(reply.managers, vec![NodeId::new(0)]);
/// assert_eq!(reply.echo_tag, tag);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AbstractSwitch {
    id: NodeId,
    config: SwitchConfig,
    rules: RuleTable,
    managers: ManagerSet,
    /// Per-controller meta-rule tag (`t_metaRule`), updated by `newRound`.
    meta_tags: BTreeMap<NodeId, Tag>,
    stats: SwitchStats,
    /// Bumped on every configuration mutation (batches, corruption helpers);
    /// consumers use it to dirty-track anything derived from the switch state.
    state_version: u64,
}

impl AbstractSwitch {
    /// Creates a switch with empty configuration.
    pub fn new(id: NodeId, config: SwitchConfig) -> Self {
        AbstractSwitch {
            id,
            config,
            rules: RuleTable::new(config.max_rules),
            managers: ManagerSet::new(config.max_managers),
            meta_tags: BTreeMap::new(),
            stats: SwitchStats::default(),
            state_version: 0,
        }
    }

    /// This switch's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The capacity configuration.
    pub fn config(&self) -> SwitchConfig {
        self.config
    }

    /// The rule table (read-only).
    pub fn rules(&self) -> &RuleTable {
        &self.rules
    }

    /// The manager set (read-only).
    pub fn managers(&self) -> &ManagerSet {
        &self.managers
    }

    /// The meta-rule tag most recently installed by `controller`, if any.
    pub fn meta_tag(&self, controller: NodeId) -> Option<Tag> {
        self.meta_tags.get(&controller).copied()
    }

    /// Activity counters.
    pub fn stats(&self) -> SwitchStats {
        self.stats
    }

    /// A counter that bumps whenever the switch configuration (rules, managers,
    /// meta tags) may have changed. Two equal versions on the same switch
    /// guarantee an unchanged configuration, which is what lets the harness
    /// dirty-track its legitimacy predicate.
    pub fn state_version(&self) -> u64 {
        self.state_version
    }

    /// Applies one command batch atomically and returns the query reply if the batch
    /// contained a query (it normally does — Algorithm 2 always ends batches with one).
    ///
    /// `neighbors` is the switch's currently observed neighborhood `Nc(j)`, supplied by
    /// the local topology-discovery mechanism (in the simulation: the netsim context).
    pub fn apply_batch(
        &mut self,
        batch: &CommandBatch,
        neighbors: &[NodeId],
    ) -> Option<QueryReply> {
        self.stats.batches_applied += 1;
        // Conservative dirty-tracking: any batch may mutate the configuration.
        self.state_version += 1;
        let from = batch.from;
        let mut reply_tag = None;
        for command in &batch.commands {
            match command {
                SwitchCommand::NewRound { tag } => {
                    self.meta_tags.insert(from, *tag);
                }
                SwitchCommand::AddManager { controller } => {
                    self.managers.add(*controller);
                }
                SwitchCommand::DelManager { controller } => {
                    if self.managers.remove(*controller) {
                        self.stats.managers_deleted += 1;
                    }
                }
                SwitchCommand::DelAllRules { controller } => {
                    let removed = self.rules.delete_controller(*controller);
                    self.stats.rules_deleted += removed as u64;
                    self.meta_tags.remove(controller);
                }
                SwitchCommand::UpdateRules { rules, keep_tags } => {
                    let removed =
                        self.rules
                            .replace_controller_rules(from, rules.iter().copied(), keep_tags);
                    self.stats.rules_deleted += removed as u64;
                }
                SwitchCommand::Query { tag } => {
                    reply_tag = Some(*tag);
                }
            }
        }
        reply_tag.map(|tag| {
            self.stats.queries_answered += 1;
            QueryReply {
                responder: self.id,
                neighbors: neighbors.to_vec(),
                managers: self.managers.to_sorted_vec(),
                rules: self.rules.iter().copied().collect(),
                echo_tag: tag,
            }
        })
    }

    /// Data-plane forwarding decision for a packet with header `(src, dst)`.
    ///
    /// Returns the next hop chosen by the highest-priority applicable rule whose
    /// out-link is operational (`is_up`) and whose next hop has not been visited yet
    /// (the visited set is the bounce-back state of the data-plane DFS, cf. the
    /// `sdn-topology` flow planner). Falls back to forwarding directly to `dst` when it
    /// is an operational neighbor — the paper's query-by-neighbor functionality.
    pub fn next_hop<F>(
        &mut self,
        src: NodeId,
        dst: NodeId,
        visited: &[NodeId],
        neighbors: &[NodeId],
        mut is_up: F,
    ) -> Option<NodeId>
    where
        F: FnMut(NodeId) -> bool,
    {
        let decision =
            crate::forwarding::decide(&self.rules, src, dst, visited, neighbors, &mut is_up);
        match decision {
            Some(hop) => {
                self.stats.packets_forwarded += 1;
                Some(hop)
            }
            None => {
                self.stats.packets_dropped += 1;
                None
            }
        }
    }

    // ------------------------------------------------------------------
    // Transient-fault injection helpers (used by tests and the Theorem 2 benches).
    // ------------------------------------------------------------------

    /// Installs an arbitrary rule directly, bypassing the command interface — models a
    /// transient fault corrupting the switch configuration.
    pub fn corrupt_install_rule(&mut self, rule: Rule) {
        self.state_version += 1;
        self.rules.insert(rule);
    }

    /// Adds an arbitrary manager directly — models a transient fault.
    pub fn corrupt_add_manager(&mut self, controller: NodeId) {
        self.state_version += 1;
        self.managers.add(controller);
    }

    /// Clears the whole configuration — models a factory reset / power cycle.
    pub fn corrupt_clear(&mut self) {
        self.state_version += 1;
        self.rules.clear();
        self.managers.clear();
        self.meta_tags.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn rule(cid: u32, src: u32, dst: u32, prt: u8, fwd: u32, tag: u64) -> Rule {
        Rule {
            cid: n(cid),
            sid: n(9),
            src: Some(n(src)),
            dst: n(dst),
            prt,
            fwd: n(fwd),
            tag: Tag::new(cid, tag),
        }
    }

    fn query_batch(from: u32, tag: Tag, extra: Vec<SwitchCommand>) -> CommandBatch {
        let mut commands = vec![SwitchCommand::NewRound { tag }];
        commands.extend(extra);
        commands.push(SwitchCommand::Query { tag });
        CommandBatch::new(n(from), commands)
    }

    #[test]
    fn full_batch_updates_everything_and_replies() {
        let mut sw = AbstractSwitch::new(n(9), SwitchConfig::default());
        let tag = Tag::new(0, 7);
        let batch = query_batch(
            0,
            tag,
            vec![
                SwitchCommand::AddManager { controller: n(0) },
                SwitchCommand::UpdateRules {
                    rules: vec![rule(0, 0, 5, 2, 4, 7), rule(0, 5, 0, 2, 3, 7)],
                    keep_tags: vec![],
                },
            ],
        );
        let reply = sw.apply_batch(&batch, &[n(3), n(4)]).unwrap();
        assert_eq!(reply.responder, n(9));
        assert_eq!(reply.neighbors, vec![n(3), n(4)]);
        assert_eq!(reply.managers, vec![n(0)]);
        assert_eq!(reply.rules.len(), 2);
        assert_eq!(reply.echo_tag, tag);
        assert_eq!(sw.meta_tag(n(0)), Some(tag));
        assert_eq!(sw.stats().batches_applied, 1);
        assert_eq!(sw.stats().queries_answered, 1);
    }

    #[test]
    fn batch_without_query_returns_none() {
        let mut sw = AbstractSwitch::new(n(9), SwitchConfig::default());
        let batch = CommandBatch::new(n(0), vec![SwitchCommand::AddManager { controller: n(0) }]);
        assert!(sw.apply_batch(&batch, &[]).is_none());
        assert!(sw.managers().contains(n(0)));
    }

    #[test]
    fn del_commands_remove_state_of_other_controllers() {
        let mut sw = AbstractSwitch::new(n(9), SwitchConfig::default());
        // Controller 1 installs state.
        let t1 = Tag::new(1, 1);
        sw.apply_batch(
            &query_batch(
                1,
                t1,
                vec![
                    SwitchCommand::AddManager { controller: n(1) },
                    SwitchCommand::UpdateRules {
                        rules: vec![rule(1, 1, 5, 2, 4, 1)],
                        keep_tags: vec![],
                    },
                ],
            ),
            &[n(4)],
        );
        // Controller 0 removes controller 1 (it became unreachable).
        let t0 = Tag::new(0, 2);
        let reply = sw
            .apply_batch(
                &query_batch(
                    0,
                    t0,
                    vec![
                        SwitchCommand::DelManager { controller: n(1) },
                        SwitchCommand::DelAllRules { controller: n(1) },
                        SwitchCommand::AddManager { controller: n(0) },
                    ],
                ),
                &[n(4)],
            )
            .unwrap();
        assert_eq!(reply.managers, vec![n(0)]);
        assert!(reply.rules.is_empty());
        assert_eq!(
            sw.meta_tag(n(1)),
            None,
            "delAllRules drops the meta tag too"
        );
        assert_eq!(sw.stats().managers_deleted, 1);
        assert_eq!(sw.stats().rules_deleted, 1);
    }

    #[test]
    fn update_rules_only_touches_the_sender() {
        let mut sw = AbstractSwitch::new(n(9), SwitchConfig::default());
        sw.apply_batch(
            &query_batch(
                1,
                Tag::new(1, 1),
                vec![SwitchCommand::UpdateRules {
                    rules: vec![rule(1, 1, 5, 2, 4, 1)],
                    keep_tags: vec![],
                }],
            ),
            &[],
        );
        sw.apply_batch(
            &query_batch(
                0,
                Tag::new(0, 1),
                vec![SwitchCommand::UpdateRules {
                    rules: vec![rule(0, 0, 5, 2, 4, 1)],
                    keep_tags: vec![],
                }],
            ),
            &[],
        );
        assert_eq!(sw.rules().rules_of(n(1)).len(), 1);
        assert_eq!(sw.rules().rules_of(n(0)).len(), 1);
    }

    #[test]
    fn forwarding_uses_rules_and_counts_drops() {
        let mut sw = AbstractSwitch::new(n(9), SwitchConfig::default());
        sw.corrupt_install_rule(rule(0, 0, 5, 2, 4, 1));
        sw.corrupt_install_rule(rule(0, 0, 5, 1, 3, 1));
        let hop = sw.next_hop(n(0), n(5), &[], &[n(3), n(4)], |_| true);
        assert_eq!(hop, Some(n(4)), "highest priority rule wins");
        // Out-link to 4 down: fall back to the lower-priority rule.
        let hop = sw.next_hop(n(0), n(5), &[], &[n(3), n(4)], |h| h != n(4));
        assert_eq!(hop, Some(n(3)));
        // No rule matches and the destination is not a neighbor: drop.
        let hop = sw.next_hop(n(1), n(7), &[], &[n(3), n(4)], |_| true);
        assert_eq!(hop, None);
        assert_eq!(sw.stats().packets_forwarded, 2);
        assert_eq!(sw.stats().packets_dropped, 1);
    }

    #[test]
    fn forwarding_falls_back_to_direct_neighbor() {
        let mut sw = AbstractSwitch::new(n(9), SwitchConfig::default());
        // No rules at all, but the destination is an operational neighbor.
        let hop = sw.next_hop(n(0), n(4), &[], &[n(3), n(4)], |_| true);
        assert_eq!(hop, Some(n(4)));
    }

    #[test]
    fn corruption_helpers_modify_state() {
        let mut sw = AbstractSwitch::new(n(9), SwitchConfig::default());
        sw.corrupt_add_manager(n(7));
        sw.corrupt_install_rule(rule(7, 7, 1, 1, 3, 99));
        assert!(sw.managers().contains(n(7)));
        assert_eq!(sw.rules().len(), 1);
        sw.corrupt_clear();
        assert!(sw.managers().is_empty());
        assert!(sw.rules().is_empty());
        assert_eq!(sw.meta_tag(n(7)), None);
    }

    #[test]
    fn config_for_network_matches_lemma1_bound() {
        let cfg = SwitchConfig::for_network(3, 20, 4);
        assert!(cfg.max_rules >= 3 * 19 * 4);
        assert_eq!(cfg.max_managers, 3);
        // Degenerate inputs do not underflow.
        let tiny = SwitchConfig::for_network(0, 0, 0);
        assert!(tiny.max_rules >= 1);
        assert_eq!(tiny.max_managers, 1);
    }
}
