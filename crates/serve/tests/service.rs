//! End-to-end service test: boot `sdn-serve` on an ephemeral port, drive a whole
//! interactive session over real HTTP — free-run to legitimacy, inject a link
//! failure, stream telemetry, attach flows, pause/step — then shut down cleanly
//! and prove the recorded command log replays bit-identically.

use renaissance_bench::report::Json;
use sdn_serve::{CommandLog, Server, Session, SessionConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::thread;
use std::time::Duration;

fn config() -> SessionConfig {
    SessionConfig {
        topology: "grid(2,3)".to_string(),
        controllers: 2,
        seed: 11,
        tick_millis: 250,
        ring_capacity: 256,
    }
}

/// One raw HTTP exchange against the service.
fn http(addr: &str, method: &str, path: &str, body: &str) -> (u16, Json) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, payload) = response.split_once("\r\n\r\n").expect("split response");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let json = Json::parse(payload).unwrap_or_else(|e| panic!("bad JSON `{payload}`: {e}"));
    (status, json)
}

/// Polls `/legitimacy` until the network converges (bounded).
fn await_legitimate(addr: &str) {
    for _ in 0..2000 {
        let (status, verdict) = http(addr, "GET", "/legitimacy", "");
        assert_eq!(status, 200);
        if verdict.get("legitimate").and_then(Json::as_bool) == Some(true) {
            return;
        }
        thread::sleep(Duration::from_millis(5));
    }
    panic!("network never became legitimate");
}

#[test]
fn a_full_interactive_session_replays_bit_identically() {
    let server = Server::bind(Session::new(config()), "127.0.0.1:0").expect("bind");
    let addr = server.addr().to_string();
    let driver = thread::spawn(move || server.run());

    // Free-run until the control plane converges.
    let (status, ack) = http(&addr, "POST", "/run", "");
    assert_eq!(status, 200, "{ack}");
    await_legitimate(&addr);

    // Pick a real switch-switch link off the live topology and fail it.
    let (status, topo) = http(&addr, "GET", "/topology", "");
    assert_eq!(status, 200);
    let switches: Vec<f64> = topo
        .get("switches")
        .and_then(Json::as_array)
        .expect("switches")
        .iter()
        .filter_map(Json::as_f64)
        .collect();
    let link = topo
        .get("links")
        .and_then(Json::as_array)
        .expect("links")
        .iter()
        .filter_map(|l| {
            let ends = l.as_array()?;
            let a = ends.first()?.as_f64()?;
            let b = ends.get(1)?.as_f64()?;
            (switches.contains(&a) && switches.contains(&b)).then_some((a as u32, b as u32))
        })
        .next()
        .expect("a switch-switch link");
    let fault = format!(
        "{{\"kind\":\"fail_link\",\"a\":{},\"b\":{}}}",
        link.0, link.1
    );
    let (status, ack) = http(&addr, "POST", "/faults", &fault);
    assert_eq!(status, 200, "{ack}");
    assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true), "{ack}");

    // Self-stabilization must recover legitimacy after the failure.
    await_legitimate(&addr);

    // Tail the telemetry stream long enough to see live samples flowing.
    let stream_addr = addr.clone();
    let tail = thread::spawn(move || {
        let mut stream = TcpStream::connect(&stream_addr).expect("connect stream");
        stream
            .write_all(
                format!("GET /stream HTTP/1.1\r\nHost: {stream_addr}\r\nConnection: close\r\n\r\n")
                    .as_bytes(),
            )
            .expect("write stream request");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("set timeout");
        let mut seen = String::new();
        let mut buf = [0u8; 4096];
        while seen.matches("\"tick\"").count() < 3 {
            let n = stream.read(&mut buf).expect("read stream");
            assert!(n > 0, "stream closed early");
            seen.push_str(&String::from_utf8_lossy(&buf[..n]));
        }
        assert!(seen.contains("\"legitimate\""), "samples carry legitimacy");
    });
    tail.join().expect("stream tail");

    // Attach an open-loop Poisson flow set mid-run.
    let (status, ack) = http(
        &addr,
        "POST",
        "/flows",
        "{\"pairs\":4,\"duration_ticks\":3,\"rate_per_tick\":1.5}",
    );
    assert_eq!(status, 200, "{ack}");
    assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true), "{ack}");

    // Pause, then single-step deterministically.
    let (status, _) = http(&addr, "POST", "/pause", "");
    assert_eq!(status, 200);
    let (_, before) = http(&addr, "GET", "/metrics", "");
    let tick_before = before.get("tick").and_then(Json::as_f64).expect("tick");
    assert!(
        before.get("uptime_s").and_then(Json::as_f64).is_some(),
        "transport annotates /metrics with uptime"
    );
    let (status, _) = http(&addr, "POST", "/step?ticks=4", "");
    assert_eq!(status, 200);
    let (_, after) = http(&addr, "GET", "/metrics", "");
    let tick_after = after.get("tick").and_then(Json::as_f64).expect("tick");
    assert_eq!(
        tick_after,
        tick_before + 4.0,
        "step advanced exactly 4 ticks"
    );

    // Node snapshots and the paged probe log.
    let (status, node) = http(&addr, "GET", &format!("/nodes/{}", link.0), "");
    assert_eq!(status, 200);
    assert!(node.get("id").is_some(), "{node}");
    let (status, _) = http(&addr, "GET", "/nodes/9999", "");
    assert_eq!(status, 404);
    let (status, page) = http(&addr, "GET", "/log?from=0&limit=5", "");
    assert_eq!(status, 200);
    assert!(
        !page
            .get("lines")
            .and_then(Json::as_array)
            .expect("lines")
            .is_empty(),
        "{page}"
    );

    // The gray-failure family: degrade the same link's quality in one direction,
    // restore it, split the network along its rows, heal it, then flap a link and
    // roll the controllers — all through the public fault surface.
    for (body, expect) in [
        (
            format!(
                "{{\"kind\":\"degrade_link\",\"a\":{},\"b\":{},\"burst\":{{\"p_enter\":0.15,\"p_exit\":0.35,\"loss_bad\":1.0}},\"asymmetric\":true}}",
                link.0, link.1
            ),
            200,
        ),
        (
            format!(
                "{{\"kind\":\"restore_link_quality\",\"a\":{},\"b\":{}}}",
                link.0, link.1
            ),
            200,
        ),
        (
            "{\"kind\":\"partition\",\"groups\":[[0,2,3,4],[1,5,6,7]]}".to_string(),
            200,
        ),
        ("{\"kind\":\"heal_partition\"}".to_string(), 200),
        // Healing twice is a state conflict, not a parse error.
        ("{\"kind\":\"heal_partition\"}".to_string(), 409),
        (
            format!(
                "{{\"kind\":\"flap_link\",\"a\":{},\"b\":{},\"period_ticks\":4,\"count\":1}}",
                link.0, link.1
            ),
            200,
        ),
        (
            "{\"kind\":\"rolling_restart\",\"interval_ticks\":6,\"down_ticks\":3,\"count\":1}"
                .to_string(),
            200,
        ),
    ] {
        let (status, ack) = http(&addr, "POST", "/faults", &body);
        assert_eq!(status, expect, "{body} -> {ack}");
    }
    // Drain the scheduled flap and restart phases, then prove the control plane
    // recovers legitimacy after the whole gray barrage.
    let (status, _) = http(&addr, "POST", "/step?ticks=12", "");
    assert_eq!(status, 200);
    let (status, _) = http(&addr, "POST", "/run", "");
    assert_eq!(status, 200);
    await_legitimate(&addr);
    let (status, _) = http(&addr, "POST", "/pause", "");
    assert_eq!(status, 200);

    // Bad input is rejected at the transport boundary.
    let (status, _) = http(&addr, "POST", "/faults", "{\"kind\":\"nonsense\"}");
    assert_eq!(status, 400);
    let (status, _) = http(&addr, "GET", "/no-such-route", "");
    assert_eq!(status, 404);

    // Clean shutdown hands back the report and the sealed command log.
    let (status, _) = http(&addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    let (report, log) = driver.join().expect("driver thread");

    // The recorded session must replay bit-identically, including through a
    // serialization round trip.
    assert!(log.entries.len() >= 6, "all commands were logged");
    assert_eq!(log.replay().to_string(), report.to_string());
    let text = log.to_jsonl();
    let parsed = CommandLog::parse(&text).expect("parse recorded log");
    parsed.verify().expect("round-tripped log verifies");
    assert_eq!(parsed.to_jsonl(), text);
}
