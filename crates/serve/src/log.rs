//! The replayable command log: a JSON-lines record of one session.
//!
//! Three line kinds, in order:
//!
//! ```text
//! {"kind":"header","v":1,"config":{...}}          // how the session was booted
//! {"kind":"command","tick":N,"cmd":{"op":...}}    // one per command, in order
//! {"kind":"final","tick":N,"report":{...}}        // last tick + the live report
//! ```
//!
//! Replay rebuilds the session from the header, steps to each entry's tick before
//! applying its command, steps to the final tick, and recomputes the report.
//! Because the session core is wall-clock-free, the recomputed report is
//! byte-identical to the recorded one — [`CommandLog::verify`] enforces exactly
//! that, and the CI smoke job runs it on a real recorded session.

use crate::command::Command;
use crate::session::{Session, SessionConfig};
use renaissance_bench::report::Json;

/// A complete recorded session: boot config, stamped commands, final tick, and the
/// final report the live session produced.
#[derive(Clone, Debug)]
pub struct CommandLog {
    /// The session's boot configuration (the log header).
    pub config: SessionConfig,
    /// Commands in application order, each stamped with the tick it applied at.
    pub entries: Vec<(u64, Command)>,
    /// The tick the session ended on.
    pub final_tick: u64,
    /// The final report the live session produced (the replay oracle).
    pub report: Json,
}

impl CommandLog {
    /// An empty log for a session booted from `config`.
    pub fn new(config: SessionConfig) -> Self {
        CommandLog {
            config,
            entries: Vec::new(),
            final_tick: 0,
            report: Json::Null,
        }
    }

    /// Appends one stamped command.
    pub fn push(&mut self, tick: u64, cmd: Command) {
        self.entries.push((tick, cmd));
    }

    /// Seals the log with the live session's end state.
    pub fn finalize(&mut self, final_tick: u64, report: Json) {
        self.final_tick = final_tick;
        self.report = report;
    }

    /// Serializes to JSON lines (trailing newline included).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(
            &Json::obj([
                ("kind", Json::str("header")),
                ("v", Json::num(1.0)),
                ("config", self.config.to_json()),
            ])
            .to_string(),
        );
        out.push('\n');
        for (tick, cmd) in &self.entries {
            out.push_str(
                &Json::obj([
                    ("kind", Json::str("command")),
                    ("tick", Json::num(*tick as f64)),
                    ("cmd", cmd.to_json()),
                ])
                .to_string(),
            );
            out.push('\n');
        }
        out.push_str(
            &Json::obj([
                ("kind", Json::str("final")),
                ("tick", Json::num(self.final_tick as f64)),
                ("report", self.report.clone()),
            ])
            .to_string(),
        );
        out.push('\n');
        out
    }

    /// Parses a serialized log, validating line order and tick monotonicity.
    pub fn parse(text: &str) -> Result<CommandLog, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or("empty command log")?;
        let header = Json::parse(header).map_err(|e| format!("header: {e}"))?;
        if header.get("kind").and_then(Json::as_str) != Some("header") {
            return Err("first line is not a header".to_string());
        }
        let config =
            SessionConfig::from_json(header.get("config").ok_or("header has no `config`")?)?;
        let mut log = CommandLog::new(config);
        let mut sealed = false;
        let mut last_tick = 0u64;
        for (i, line) in lines.enumerate() {
            if sealed {
                return Err(format!("line {}: data after the final record", i + 2));
            }
            let json = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 2))?;
            let tick = json
                .get("tick")
                .and_then(Json::as_f64)
                .filter(|t| t.is_finite() && *t >= 0.0)
                .map(|t| t as u64)
                .ok_or_else(|| format!("line {}: missing `tick`", i + 2))?;
            if tick < last_tick {
                return Err(format!(
                    "line {}: tick {tick} goes backwards (after {last_tick})",
                    i + 2
                ));
            }
            last_tick = tick;
            match json.get("kind").and_then(Json::as_str) {
                Some("command") => {
                    let cmd = Command::from_json(
                        json.get("cmd")
                            .ok_or_else(|| format!("line {}: missing `cmd`", i + 2))?,
                    )
                    .map_err(|e| format!("line {}: {e}", i + 2))?;
                    log.push(tick, cmd);
                }
                Some("final") => {
                    let report = json.get("report").cloned().unwrap_or(Json::Null);
                    log.finalize(tick, report);
                    sealed = true;
                }
                other => {
                    return Err(format!("line {}: unexpected kind {other:?}", i + 2));
                }
            }
        }
        if !sealed {
            return Err("command log has no final record".to_string());
        }
        Ok(log)
    }

    /// Re-executes the recorded session single-threaded and returns the recomputed
    /// final report.
    pub fn replay(&self) -> Json {
        let mut session = Session::new(self.config.clone());
        for (tick, cmd) in &self.entries {
            while session.tick() < *tick {
                session.step();
            }
            session.apply(cmd);
        }
        while session.tick() < self.final_tick {
            session.step();
        }
        session.final_report()
    }

    /// Replays and compares against the recorded report, byte for byte. Returns the
    /// recomputed report on success; on divergence, an error carrying both.
    pub fn verify(&self) -> Result<Json, String> {
        let replayed = self.replay();
        let want = self.report.to_string();
        let got = replayed.to_string();
        if want == got {
            Ok(replayed)
        } else {
            Err(format!(
                "replay diverged from the recorded report\n  recorded: {want}\n  replayed: {got}"
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{FaultSpec, FlowsSpec};

    fn tiny() -> SessionConfig {
        SessionConfig {
            topology: "grid(2,3)".to_string(),
            controllers: 2,
            seed: 13,
            tick_millis: 500,
            ring_capacity: 32,
        }
    }

    /// Drives a session the way the live driver does, recording as it goes.
    fn record_live() -> (Json, CommandLog) {
        let mut session = Session::new(tiny());
        let mut log = CommandLog::new(tiny());
        let drive = |session: &mut Session, log: &mut CommandLog, cmd: Command, steps: u64| {
            log.push(session.tick(), cmd.clone());
            session.apply(&cmd);
            for _ in 0..steps {
                session.step();
            }
        };
        drive(&mut session, &mut log, Command::Run { until_s: None }, 25);
        drive(
            &mut session,
            &mut log,
            Command::Fault(FaultSpec::FailLink(3, 4)),
            10,
        );
        drive(
            &mut session,
            &mut log,
            Command::Flows(FlowsSpec {
                pairs: 8,
                duration_ticks: 4,
                rate_per_tick: Some(2.0),
                permutation: false,
                seed_salt: None,
            }),
            6,
        );
        // One of each gray-failure kind: a recorded session must replay them all
        // bit-identically, including the deferred flap and restart phases.
        drive(
            &mut session,
            &mut log,
            Command::Fault(FaultSpec::DegradeLink {
                a: 3,
                b: 4,
                loss: 0.0,
                burst: Some((0.15, 0.35, 1.0)),
                asymmetric: true,
            }),
            8,
        );
        drive(
            &mut session,
            &mut log,
            Command::Fault(FaultSpec::RestoreLinkQuality(3, 4)),
            4,
        );
        // grid(2,3) with 2 controllers: rows are {2,3,4} and {5,6,7}; splitting
        // along the rows keeps a controller on each side.
        drive(
            &mut session,
            &mut log,
            Command::Fault(FaultSpec::Partition {
                groups: vec![vec![0, 2, 3, 4], vec![1, 5, 6, 7]],
            }),
            6,
        );
        drive(
            &mut session,
            &mut log,
            Command::Fault(FaultSpec::HealPartition),
            6,
        );
        drive(
            &mut session,
            &mut log,
            Command::Fault(FaultSpec::FlapLink {
                a: 3,
                b: 4,
                period_ticks: 4,
                count: 2,
            }),
            12,
        );
        drive(
            &mut session,
            &mut log,
            Command::Fault(FaultSpec::RollingRestart {
                interval_ticks: 6,
                down_ticks: 3,
                count: 2,
            }),
            16,
        );
        drive(&mut session, &mut log, Command::Pause, 0);
        drive(&mut session, &mut log, Command::Shutdown, 0);
        let report = session.final_report();
        log.finalize(session.tick(), report.clone());
        (report, log)
    }

    #[test]
    fn replay_reproduces_the_live_report_bit_identically() {
        let (report, log) = record_live();
        assert_eq!(log.replay().to_string(), report.to_string());
        log.verify().unwrap();
    }

    #[test]
    fn logs_survive_a_serialization_round_trip() {
        let (_, log) = record_live();
        let text = log.to_jsonl();
        let parsed = CommandLog::parse(&text).unwrap();
        assert_eq!(parsed.to_jsonl(), text);
        parsed.verify().unwrap();
    }

    #[test]
    fn parse_rejects_malformed_logs() {
        let (_, log) = record_live();
        let good = log.to_jsonl();
        for (mangle, needle) in [
            ("".to_string(), "empty"),
            ("{\"kind\":\"command\"}\n".to_string(), "not a header"),
            (good.lines().next().unwrap().to_string() + "\n", "no final"),
            (
                good.clone() + "{\"kind\":\"command\",\"tick\":0,\"cmd\":{\"op\":\"pause\"}}\n",
                "after the final",
            ),
        ] {
            let err = CommandLog::parse(&mangle).unwrap_err();
            assert!(err.contains(needle), "wanted `{needle}`, got `{err}`");
        }
    }
}
