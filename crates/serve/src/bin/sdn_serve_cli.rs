//! `sdn-serve-cli` — terminal client for a running `sdn-serve` instance.
//!
//! Speaks the same dependency-free HTTP/1.1 the server does: one connection per
//! request, JSON bodies, chunked transfer for `stream`.

use renaissance_bench::report::Json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
usage: sdn-serve-cli [--addr HOST:PORT] <command> [args]

commands:
  topology                 the static topology snapshot
  legitimacy               current legitimacy verdict and open issues
  metrics                  counters for the current tick
  node <ID>                one node's state
  log [FROM] [LIMIT]       a page of retained probe samples
  fault <JSON>             inject a fault, e.g. '{\"kind\":\"fail_link\",\"a\":1,\"b\":2}'
  flows <JSON>             attach flows, e.g. '{\"pairs\":8,\"duration_ticks\":20}'
  step [TICKS]             advance N ticks (default 1)
  run [UNTIL_S]            free-run, optionally until simulated time UNTIL_S
  pause                    stop free-running
  shutdown                 end the session (server seals its command log)
  stream                   tail the live telemetry stream (NDJSON)
  watch [INTERVAL_MS]      poll metrics+legitimacy into a one-line ticker";

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7878".to_string();
    if args.first().map(String::as_str) == Some("--addr") {
        if args.len() < 2 {
            eprintln!("--addr needs a value\n{USAGE}");
            return ExitCode::from(2);
        }
        addr = args[1].clone();
        args.drain(..2);
    }
    let cmd = args.first().cloned().unwrap_or_default();
    let rest = &args[1..];
    let outcome = match cmd.as_str() {
        "topology" => show(&addr, "GET", "/topology", ""),
        "legitimacy" => show(&addr, "GET", "/legitimacy", ""),
        "metrics" => show(&addr, "GET", "/metrics", ""),
        "node" => match rest.first() {
            Some(id) => show(&addr, "GET", &format!("/nodes/{id}"), ""),
            None => Err("node needs an ID".to_string()),
        },
        "log" => {
            let from = rest.first().map(String::as_str).unwrap_or("0");
            let limit = rest.get(1).map(String::as_str).unwrap_or("100");
            show(&addr, "GET", &format!("/log?from={from}&limit={limit}"), "")
        }
        "fault" => match rest.first() {
            Some(body) => show(&addr, "POST", "/faults", body),
            None => Err("fault needs a JSON body".to_string()),
        },
        "flows" => match rest.first() {
            Some(body) => show(&addr, "POST", "/flows", body),
            None => Err("flows needs a JSON body".to_string()),
        },
        "step" => {
            let ticks = rest.first().map(String::as_str).unwrap_or("1");
            show(&addr, "POST", &format!("/step?ticks={ticks}"), "")
        }
        "run" => match rest.first() {
            Some(until) => show(&addr, "POST", &format!("/run?until={until}"), ""),
            None => show(&addr, "POST", "/run", ""),
        },
        "pause" => show(&addr, "POST", "/pause", ""),
        "shutdown" => show(&addr, "POST", "/shutdown", ""),
        "stream" => stream(&addr),
        "watch" => {
            let interval: u64 = rest.first().and_then(|s| s.parse().ok()).unwrap_or(1000);
            watch(&addr, interval)
        }
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("sdn-serve-cli: {error}");
            ExitCode::FAILURE
        }
    }
}

/// Issues one request and prints the JSON response body.
fn show(addr: &str, method: &str, path: &str, body: &str) -> Result<(), String> {
    let (status, body) = request(addr, method, path, body)?;
    println!("{body}");
    if status < 400 {
        Ok(())
    } else {
        Err(format!("HTTP {status} for {method} {path}"))
    }
}

/// One full HTTP exchange: returns (status, body).
fn request(addr: &str, method: &str, path: &str, body: &str) -> Result<(u16, String), String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
        .map_err(|e| format!("write to {addr}: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("read from {addr}: {e}"))?;
    let (head, payload) = response
        .split_once("\r\n\r\n")
        .ok_or("malformed HTTP response")?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or("malformed HTTP status line")?;
    Ok((status, payload.to_string()))
}

/// Tails `GET /stream`, de-chunking the NDJSON feed to stdout until the server
/// ends the session.
fn stream(addr: &str) -> Result<(), String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let head = format!("GET /stream HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream
        .write_all(head.as_bytes())
        .map_err(|e| format!("write to {addr}: {e}"))?;
    let mut reader = BufReader::new(stream);
    // Skip the response head.
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).map_err(|e| e.to_string())? == 0 {
            return Err("connection closed before response head ended".to_string());
        }
        if line == "\r\n" {
            break;
        }
    }
    // De-chunk until the zero-length terminator.
    loop {
        let mut size_line = String::new();
        if reader
            .read_line(&mut size_line)
            .map_err(|e| e.to_string())?
            == 0
        {
            return Ok(());
        }
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| format!("bad chunk size `{}`", size_line.trim()))?;
        if size == 0 {
            return Ok(());
        }
        let mut chunk = vec![0u8; size + 2];
        reader
            .read_exact(&mut chunk)
            .map_err(|e| format!("read chunk: {e}"))?;
        print!("{}", String::from_utf8_lossy(&chunk[..size]));
        let _ = std::io::stdout().flush();
    }
}

/// Polls `/metrics` and `/legitimacy` into a one-line ticker.
fn watch(addr: &str, interval_ms: u64) -> Result<(), String> {
    loop {
        let (status, metrics) = request(addr, "GET", "/metrics", "")?;
        if status >= 400 {
            return Err(format!("HTTP {status} for GET /metrics"));
        }
        let (_, legitimacy) = request(addr, "GET", "/legitimacy", "")?;
        let metrics = Json::parse(&metrics).map_err(|e| format!("bad /metrics JSON: {e}"))?;
        let legitimacy =
            Json::parse(&legitimacy).map_err(|e| format!("bad /legitimacy JSON: {e}"))?;
        let field = |j: &Json, k: &str| j.get(k).and_then(Json::as_f64).unwrap_or(0.0);
        println!(
            "tick {:>6}  sim {:>8.1}s  events {:>9}  msgs {:>9}  rules {:>5}  legitimate: {}",
            field(&metrics, "tick"),
            field(&metrics, "sim_s"),
            field(&metrics, "events"),
            field(&metrics, "msgs_sent"),
            field(&metrics, "rules_total"),
            legitimacy
                .get("legitimate")
                .and_then(Json::as_bool)
                .map(|b| if b { "yes" } else { "NO" })
                .unwrap_or("?"),
        );
        std::thread::sleep(Duration::from_millis(interval_ms));
    }
}
