//! `sdn-serve` — boot the long-running simulation service, or replay a recorded
//! command log and verify it reproduces the live report bit for bit.

use sdn_serve::{CommandLog, Server, Session, SessionConfig};
use std::process::ExitCode;
use std::str::FromStr;

const USAGE: &str = "\
usage:
  sdn-serve serve [--addr HOST:PORT] [--topology NAME] [--controllers N]
                  [--seed N] [--tick-ms N] [--ring N] [--log PATH] [--pace-ms N]
  sdn-serve replay <LOG>

serve   boot a session and expose the HTTP/JSON control surface
        (defaults: --addr 127.0.0.1:7878, --topology fat_tree(4), --controllers 2,
         --seed 7, --tick-ms 1000, --ring 4096; --log writes the command log on
         shutdown; --pace-ms adds cosmetic wall-clock pacing between ticks)
replay  re-execute a recorded command log and fail unless the recomputed
        final report is byte-identical to the recorded one";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        Some("replay") => replay(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn parse_flag<T: FromStr>(flag: &str, value: Option<&String>) -> T {
    let Some(value) = value else {
        eprintln!("{flag} needs a value\n{USAGE}");
        std::process::exit(2);
    };
    match value.parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("{flag}: cannot parse `{value}`");
            std::process::exit(2);
        }
    }
}

fn serve(args: &[String]) -> ExitCode {
    let mut config = SessionConfig::default();
    let mut addr = "127.0.0.1:7878".to_string();
    let mut log_path: Option<String> = None;
    let mut pace_ms = 0u64;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args.get(i + 1);
        match flag {
            "--addr" => addr = parse_flag(flag, value),
            "--topology" => config.topology = parse_flag(flag, value),
            "--controllers" => config.controllers = parse_flag(flag, value),
            "--seed" => config.seed = parse_flag(flag, value),
            "--tick-ms" => config.tick_millis = parse_flag(flag, value),
            "--ring" => config.ring_capacity = parse_flag(flag, value),
            "--log" => log_path = Some(parse_flag(flag, value)),
            "--pace-ms" => pace_ms = parse_flag(flag, value),
            other => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
        i += 2;
    }
    let session = Session::new(config);
    let server = match Server::bind(session, &addr) {
        Ok(server) => server.with_pace_millis(pace_ms),
        Err(error) => {
            eprintln!("cannot bind {addr}: {error}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("sdn-serve listening on http://{}", server.addr());
    let (report, log) = server.run();
    if let Some(path) = log_path {
        if let Err(error) = std::fs::write(&path, log.to_jsonl()) {
            eprintln!("cannot write command log to {path}: {error}");
            return ExitCode::FAILURE;
        }
        eprintln!("command log written to {path}");
    }
    println!("{report}");
    ExitCode::SUCCESS
}

fn replay(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(error) => {
            eprintln!("cannot read {path}: {error}");
            return ExitCode::FAILURE;
        }
    };
    let log = match CommandLog::parse(&text) {
        Ok(log) => log,
        Err(error) => {
            eprintln!("{path}: {error}");
            return ExitCode::FAILURE;
        }
    };
    match log.verify() {
        Ok(report) => {
            eprintln!(
                "replay OK: {} commands, final tick {}, report byte-identical",
                log.entries.len(),
                log.final_tick
            );
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("replay FAILED: {error}");
            ExitCode::FAILURE
        }
    }
}
