//! Typed session commands and their JSON wire form.
//!
//! Every mutation the service can perform is a [`Command`]: the transport layer
//! parses HTTP bodies into commands and enqueues them, the driver stamps each onto
//! the tick it was applied at and appends it to the command log, and replay
//! re-executes the same commands at the same ticks. Keeping the wire form total
//! (every command round-trips through [`Command::to_json`] / [`Command::from_json`])
//! is what makes a recorded session a complete, self-contained artifact.

use renaissance_bench::report::Json;

/// One fault injection, addressed by concrete node indices (no random selectors:
/// a logged command must mean the same victims on every replay).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSpec {
    /// Fail-stop the controller with this index.
    FailController(u32),
    /// Revive a failed controller with fresh (empty) state.
    ReviveController(u32),
    /// Fail-stop the switch with this index.
    FailSwitch(u32),
    /// Revive a failed switch with empty configuration.
    ReviveSwitch(u32),
    /// Temporarily fail the link between the two nodes (it stays part of `Gc`).
    FailLink(u32, u32),
    /// Restore a temporarily failed link.
    RestoreLink(u32, u32),
    /// Permanently remove the link from the topology.
    RemoveLink(u32, u32),
    /// Add a brand-new link to the topology.
    AddLink(u32, u32),
}

impl FaultSpec {
    /// The `kind` discriminant used on the wire.
    pub fn kind(&self) -> &'static str {
        match self {
            FaultSpec::FailController(_) => "fail_controller",
            FaultSpec::ReviveController(_) => "revive_controller",
            FaultSpec::FailSwitch(_) => "fail_switch",
            FaultSpec::ReviveSwitch(_) => "revive_switch",
            FaultSpec::FailLink(..) => "fail_link",
            FaultSpec::RestoreLink(..) => "restore_link",
            FaultSpec::RemoveLink(..) => "remove_link",
            FaultSpec::AddLink(..) => "add_link",
        }
    }

    /// Serializes to the wire object (`{"kind":...,"node":n}` or
    /// `{"kind":...,"a":n,"b":m}`).
    pub fn to_json(&self) -> Json {
        match *self {
            FaultSpec::FailController(n)
            | FaultSpec::ReviveController(n)
            | FaultSpec::FailSwitch(n)
            | FaultSpec::ReviveSwitch(n) => Json::obj([
                ("kind", Json::str(self.kind())),
                ("node", Json::num(f64::from(n))),
            ]),
            FaultSpec::FailLink(a, b)
            | FaultSpec::RestoreLink(a, b)
            | FaultSpec::RemoveLink(a, b)
            | FaultSpec::AddLink(a, b) => Json::obj([
                ("kind", Json::str(self.kind())),
                ("a", Json::num(f64::from(a))),
                ("b", Json::num(f64::from(b))),
            ]),
        }
    }

    /// Parses the wire object.
    pub fn from_json(json: &Json) -> Result<FaultSpec, String> {
        let kind = json
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("fault needs a string `kind`")?;
        let node = || -> Result<u32, String> {
            field_u32(json, "node").ok_or_else(|| format!("fault `{kind}` needs a `node` index"))
        };
        let link = || -> Result<(u32, u32), String> {
            match (field_u32(json, "a"), field_u32(json, "b")) {
                (Some(a), Some(b)) => Ok((a, b)),
                _ => Err(format!("fault `{kind}` needs `a` and `b` node indices")),
            }
        };
        Ok(match kind {
            "fail_controller" => FaultSpec::FailController(node()?),
            "revive_controller" => FaultSpec::ReviveController(node()?),
            "fail_switch" => FaultSpec::FailSwitch(node()?),
            "revive_switch" => FaultSpec::ReviveSwitch(node()?),
            "fail_link" => {
                let (a, b) = link()?;
                FaultSpec::FailLink(a, b)
            }
            "restore_link" => {
                let (a, b) = link()?;
                FaultSpec::RestoreLink(a, b)
            }
            "remove_link" => {
                let (a, b) = link()?;
                FaultSpec::RemoveLink(a, b)
            }
            "add_link" => {
                let (a, b) = link()?;
                FaultSpec::AddLink(a, b)
            }
            other => return Err(format!("unknown fault kind `{other}`")),
        })
    }
}

/// A flow-engine workload attachment: which traffic shape to offer and for how many
/// service ticks. The arrival process is the open-loop Poisson law when
/// `rate_per_tick` is set, otherwise every flow starts up front.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlowsSpec {
    /// Number of sampled source/destination pairs.
    pub pairs: u32,
    /// Service ticks the workload runs for before reporting.
    pub duration_ticks: u32,
    /// Open-loop Poisson arrival rate in flows per service tick; `None` = up-front.
    pub rate_per_tick: Option<f64>,
    /// Traffic matrix label: `"uniform"` (default) or `"permutation"`.
    pub permutation: bool,
    /// Extra salt mixed into the workload seed, so repeated attachments offer
    /// decorrelated flow populations; `None` = the engine default.
    pub seed_salt: Option<u64>,
}

impl FlowsSpec {
    /// Serializes to the wire object.
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("pairs".to_string(), Json::num(f64::from(self.pairs))),
            (
                "duration_ticks".to_string(),
                Json::num(f64::from(self.duration_ticks)),
            ),
        ];
        if let Some(rate) = self.rate_per_tick {
            members.push(("rate_per_tick".to_string(), Json::num(rate)));
        }
        if self.permutation {
            members.push(("matrix".to_string(), Json::str("permutation")));
        }
        if let Some(salt) = self.seed_salt {
            members.push(("seed_salt".to_string(), Json::num(salt as f64)));
        }
        Json::Obj(members)
    }

    /// Parses the wire object.
    pub fn from_json(json: &Json) -> Result<FlowsSpec, String> {
        let pairs = field_u32(json, "pairs").ok_or("flows need a `pairs` count")?;
        let duration_ticks =
            field_u32(json, "duration_ticks").ok_or("flows need a `duration_ticks` window")?;
        if pairs == 0 || duration_ticks == 0 {
            return Err("`pairs` and `duration_ticks` must be positive".to_string());
        }
        let rate_per_tick = json.get("rate_per_tick").and_then(Json::as_f64);
        if let Some(rate) = rate_per_tick {
            if !rate.is_finite() || rate <= 0.0 {
                return Err("`rate_per_tick` must be positive".to_string());
            }
        }
        let permutation = match json.get("matrix").and_then(Json::as_str) {
            None | Some("uniform") => false,
            Some("permutation") => true,
            Some(other) => return Err(format!("unknown matrix `{other}`")),
        };
        let seed_salt = json
            .get("seed_salt")
            .and_then(Json::as_f64)
            .map(|s| s as u64);
        Ok(FlowsSpec {
            pairs,
            duration_ticks,
            rate_per_tick,
            permutation,
            seed_salt,
        })
    }
}

/// One command a client issued against the session.
///
/// Mutating commands ([`Command::Fault`], [`Command::Flows`]) change simulated
/// state when applied; control commands ([`Command::Step`], [`Command::Run`],
/// [`Command::Pause`], [`Command::Shutdown`]) steer the driver and are logged for
/// audit but replayed as no-ops — the ticks they caused are already captured by the
/// stamps of later entries and the log's final tick.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Command {
    /// Inject one fault.
    Fault(FaultSpec),
    /// Attach one flow-engine workload.
    Flows(FlowsSpec),
    /// Advance the session by this many ticks.
    Step {
        /// Number of ticks to execute.
        ticks: u32,
    },
    /// Enter free-running mode, optionally until the given simulated second.
    Run {
        /// Simulated-time deadline in seconds; `None` runs until paused.
        until_s: Option<f64>,
    },
    /// Leave free-running mode.
    Pause,
    /// End the session: the driver finalizes the command log and returns.
    Shutdown,
}

impl Command {
    /// True for commands that change simulated state when applied.
    pub fn is_mutating(&self) -> bool {
        matches!(self, Command::Fault(_) | Command::Flows(_))
    }

    /// Serializes to the wire object (`{"op":...,...}`).
    pub fn to_json(&self) -> Json {
        match self {
            Command::Fault(spec) => with_op("fault", spec.to_json()),
            Command::Flows(spec) => with_op("flows", spec.to_json()),
            Command::Step { ticks } => Json::obj([
                ("op", Json::str("step")),
                ("ticks", Json::num(f64::from(*ticks))),
            ]),
            Command::Run { until_s } => match until_s {
                Some(until) => {
                    Json::obj([("op", Json::str("run")), ("until_s", Json::num(*until))])
                }
                None => Json::obj([("op", Json::str("run"))]),
            },
            Command::Pause => Json::obj([("op", Json::str("pause"))]),
            Command::Shutdown => Json::obj([("op", Json::str("shutdown"))]),
        }
    }

    /// Parses the wire object.
    pub fn from_json(json: &Json) -> Result<Command, String> {
        let op = json
            .get("op")
            .and_then(Json::as_str)
            .ok_or("command needs a string `op`")?;
        Ok(match op {
            "fault" => Command::Fault(FaultSpec::from_json(json)?),
            "flows" => Command::Flows(FlowsSpec::from_json(json)?),
            "step" => Command::Step {
                ticks: field_u32(json, "ticks").unwrap_or(1).max(1),
            },
            "run" => Command::Run {
                until_s: json.get("until_s").and_then(Json::as_f64),
            },
            "pause" => Command::Pause,
            "shutdown" => Command::Shutdown,
            other => return Err(format!("unknown command op `{other}`")),
        })
    }
}

/// Prepends the `op` member to a serialized payload object.
fn with_op(op: &str, payload: Json) -> Json {
    let mut members = vec![("op".to_string(), Json::str(op))];
    if let Json::Obj(rest) = payload {
        members.extend(rest);
    }
    Json::Obj(members)
}

fn field_u32(json: &Json, key: &str) -> Option<u32> {
    let n = json.get(key)?.as_f64()?;
    if n.is_finite() && n >= 0.0 && n <= f64::from(u32::MAX) && n.trunc() == n {
        Some(n as u32)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_command_round_trips_through_json() {
        let commands = [
            Command::Fault(FaultSpec::FailController(1)),
            Command::Fault(FaultSpec::ReviveController(1)),
            Command::Fault(FaultSpec::FailSwitch(9)),
            Command::Fault(FaultSpec::ReviveSwitch(9)),
            Command::Fault(FaultSpec::FailLink(3, 4)),
            Command::Fault(FaultSpec::RestoreLink(3, 4)),
            Command::Fault(FaultSpec::RemoveLink(5, 6)),
            Command::Fault(FaultSpec::AddLink(5, 6)),
            Command::Flows(FlowsSpec {
                pairs: 200,
                duration_ticks: 30,
                rate_per_tick: Some(12.5),
                permutation: true,
                seed_salt: Some(42),
            }),
            Command::Flows(FlowsSpec {
                pairs: 10,
                duration_ticks: 5,
                rate_per_tick: None,
                permutation: false,
                seed_salt: None,
            }),
            Command::Step { ticks: 3 },
            Command::Run {
                until_s: Some(30.0),
            },
            Command::Run { until_s: None },
            Command::Pause,
            Command::Shutdown,
        ];
        for cmd in commands {
            let wire = cmd.to_json().to_string();
            let parsed = Command::from_json(&Json::parse(&wire).unwrap()).unwrap();
            assert_eq!(parsed, cmd, "round-trip of {wire}");
            // The wire form itself is stable under a second encode.
            assert_eq!(parsed.to_json().to_string(), wire);
        }
    }

    #[test]
    fn malformed_commands_are_rejected_with_reasons() {
        for (src, needle) in [
            (r#"{"ticks":1}"#, "needs a string `op`"),
            (r#"{"op":"warp"}"#, "unknown command op"),
            (r#"{"op":"fault"}"#, "needs a string `kind`"),
            (r#"{"op":"fault","kind":"melt"}"#, "unknown fault kind"),
            (
                r#"{"op":"fault","kind":"fail_link","a":1}"#,
                "needs `a` and `b`",
            ),
            (r#"{"op":"flows","pairs":10}"#, "duration_ticks"),
            (
                r#"{"op":"flows","pairs":10,"duration_ticks":5,"rate_per_tick":0}"#,
                "must be positive",
            ),
            (
                r#"{"op":"flows","pairs":10,"duration_ticks":5,"matrix":"spiral"}"#,
                "unknown matrix",
            ),
        ] {
            let err = Command::from_json(&Json::parse(src).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{src}: got `{err}`");
        }
    }

    #[test]
    fn step_defaults_to_one_tick() {
        let cmd = Command::from_json(&Json::parse(r#"{"op":"step"}"#).unwrap()).unwrap();
        assert_eq!(cmd, Command::Step { ticks: 1 });
    }
}
