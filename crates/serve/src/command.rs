//! Typed session commands and their JSON wire form.
//!
//! Every mutation the service can perform is a [`Command`]: the transport layer
//! parses HTTP bodies into commands and enqueues them, the driver stamps each onto
//! the tick it was applied at and appends it to the command log, and replay
//! re-executes the same commands at the same ticks. Keeping the wire form total
//! (every command round-trips through [`Command::to_json`] / [`Command::from_json`])
//! is what makes a recorded session a complete, self-contained artifact.

use renaissance_bench::report::Json;

/// One fault injection, addressed by concrete node indices (no random selectors:
/// a logged command must mean the same victims on every replay).
#[derive(Clone, Debug, PartialEq)]
pub enum FaultSpec {
    /// Fail-stop the controller with this index.
    FailController(u32),
    /// Revive a failed controller with fresh (empty) state.
    ReviveController(u32),
    /// Fail-stop the switch with this index.
    FailSwitch(u32),
    /// Revive a failed switch with empty configuration.
    ReviveSwitch(u32),
    /// Temporarily fail the link between the two nodes (it stays part of `Gc`).
    FailLink(u32, u32),
    /// Restore a temporarily failed link.
    RestoreLink(u32, u32),
    /// Permanently remove the link from the topology.
    RemoveLink(u32, u32),
    /// Add a brand-new link to the topology.
    AddLink(u32, u32),
    /// Degrade the link's quality without failing it — the gray failure: the link
    /// stays part of `Gc` but starts dropping packets.
    DegradeLink {
        /// One endpoint of the link.
        a: u32,
        /// The other endpoint.
        b: u32,
        /// Flat per-packet loss probability (ignored when `burst` is set: the
        /// burst process then owns the loss decision).
        loss: f64,
        /// Optional Gilbert burst-loss process `(p_enter, p_exit, loss_bad)`.
        burst: Option<(f64, f64, f64)>,
        /// Degrade only the `a -> b` direction, leaving the reverse clean.
        asymmetric: bool,
    },
    /// Remove every quality override from the link, restoring default behaviour.
    RestoreLinkQuality(u32, u32),
    /// Cut every link whose endpoints land in different groups. Nodes listed in
    /// several groups keep their first assignment; unlisted nodes keep all their
    /// links. Undone by [`FaultSpec::HealPartition`].
    Partition {
        /// Explicit node-index groups (at least two).
        groups: Vec<Vec<u32>>,
    },
    /// Restore every link cut by the partition currently in force.
    HealPartition,
    /// Flap the link: starting next tick, down for half of each period and back
    /// up for the rest, `count` times. Phases fire from the session's scheduled
    /// fault queue, so a replay flips the link on exactly the same ticks.
    FlapLink {
        /// One endpoint of the link.
        a: u32,
        /// The other endpoint.
        b: u32,
        /// Full down-then-up cycle length in ticks (at least 2).
        period_ticks: u32,
        /// Number of down/up cycles.
        count: u32,
    },
    /// Restart controllers one at a time: controller `i` (in index order) goes
    /// down `i * interval_ticks` after the next tick and revives `down_ticks`
    /// later — the rolling-upgrade drill.
    RollingRestart {
        /// Ticks between consecutive controllers' restarts.
        interval_ticks: u32,
        /// Ticks each controller stays down (less than `interval_ticks`, so at
        /// most one controller is down at a time).
        down_ticks: u32,
        /// Number of controllers to cycle, lowest indices first.
        count: u32,
    },
}

impl FaultSpec {
    /// The `kind` discriminant used on the wire.
    pub fn kind(&self) -> &'static str {
        match self {
            FaultSpec::FailController(_) => "fail_controller",
            FaultSpec::ReviveController(_) => "revive_controller",
            FaultSpec::FailSwitch(_) => "fail_switch",
            FaultSpec::ReviveSwitch(_) => "revive_switch",
            FaultSpec::FailLink(..) => "fail_link",
            FaultSpec::RestoreLink(..) => "restore_link",
            FaultSpec::RemoveLink(..) => "remove_link",
            FaultSpec::AddLink(..) => "add_link",
            FaultSpec::DegradeLink { .. } => "degrade_link",
            FaultSpec::RestoreLinkQuality(..) => "restore_link_quality",
            FaultSpec::Partition { .. } => "partition",
            FaultSpec::HealPartition => "heal_partition",
            FaultSpec::FlapLink { .. } => "flap_link",
            FaultSpec::RollingRestart { .. } => "rolling_restart",
        }
    }

    /// Serializes to the wire object (`{"kind":...,"node":n}`,
    /// `{"kind":...,"a":n,"b":m}`, or a kind-specific shape).
    pub fn to_json(&self) -> Json {
        match self {
            FaultSpec::FailController(n)
            | FaultSpec::ReviveController(n)
            | FaultSpec::FailSwitch(n)
            | FaultSpec::ReviveSwitch(n) => Json::obj([
                ("kind", Json::str(self.kind())),
                ("node", Json::num(f64::from(*n))),
            ]),
            FaultSpec::FailLink(a, b)
            | FaultSpec::RestoreLink(a, b)
            | FaultSpec::RemoveLink(a, b)
            | FaultSpec::AddLink(a, b)
            | FaultSpec::RestoreLinkQuality(a, b) => Json::obj([
                ("kind", Json::str(self.kind())),
                ("a", Json::num(f64::from(*a))),
                ("b", Json::num(f64::from(*b))),
            ]),
            FaultSpec::DegradeLink {
                a,
                b,
                loss,
                burst,
                asymmetric,
            } => {
                let mut members = vec![
                    ("kind".to_string(), Json::str(self.kind())),
                    ("a".to_string(), Json::num(f64::from(*a))),
                    ("b".to_string(), Json::num(f64::from(*b))),
                    ("loss".to_string(), Json::num(*loss)),
                ];
                if let Some((p_enter, p_exit, loss_bad)) = burst {
                    members.push((
                        "burst".to_string(),
                        Json::obj([
                            ("p_enter", Json::num(*p_enter)),
                            ("p_exit", Json::num(*p_exit)),
                            ("loss_bad", Json::num(*loss_bad)),
                        ]),
                    ));
                }
                if *asymmetric {
                    members.push(("asymmetric".to_string(), Json::Bool(true)));
                }
                Json::Obj(members)
            }
            FaultSpec::Partition { groups } => Json::obj([
                ("kind", Json::str(self.kind())),
                (
                    "groups",
                    Json::arr(
                        groups
                            .iter()
                            .map(|group| {
                                Json::arr(
                                    group
                                        .iter()
                                        .map(|n| Json::num(f64::from(*n)))
                                        .collect::<Vec<_>>(),
                                )
                            })
                            .collect::<Vec<_>>(),
                    ),
                ),
            ]),
            FaultSpec::HealPartition => Json::obj([("kind", Json::str(self.kind()))]),
            FaultSpec::FlapLink {
                a,
                b,
                period_ticks,
                count,
            } => Json::obj([
                ("kind", Json::str(self.kind())),
                ("a", Json::num(f64::from(*a))),
                ("b", Json::num(f64::from(*b))),
                ("period_ticks", Json::num(f64::from(*period_ticks))),
                ("count", Json::num(f64::from(*count))),
            ]),
            FaultSpec::RollingRestart {
                interval_ticks,
                down_ticks,
                count,
            } => Json::obj([
                ("kind", Json::str(self.kind())),
                ("interval_ticks", Json::num(f64::from(*interval_ticks))),
                ("down_ticks", Json::num(f64::from(*down_ticks))),
                ("count", Json::num(f64::from(*count))),
            ]),
        }
    }

    /// Parses the wire object.
    pub fn from_json(json: &Json) -> Result<FaultSpec, String> {
        let kind = json
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("fault needs a string `kind`")?;
        let node = || -> Result<u32, String> {
            field_u32(json, "node").ok_or_else(|| format!("fault `{kind}` needs a `node` index"))
        };
        let link = || -> Result<(u32, u32), String> {
            match (field_u32(json, "a"), field_u32(json, "b")) {
                (Some(a), Some(b)) => Ok((a, b)),
                _ => Err(format!("fault `{kind}` needs `a` and `b` node indices")),
            }
        };
        Ok(match kind {
            "fail_controller" => FaultSpec::FailController(node()?),
            "revive_controller" => FaultSpec::ReviveController(node()?),
            "fail_switch" => FaultSpec::FailSwitch(node()?),
            "revive_switch" => FaultSpec::ReviveSwitch(node()?),
            "fail_link" => {
                let (a, b) = link()?;
                FaultSpec::FailLink(a, b)
            }
            "restore_link" => {
                let (a, b) = link()?;
                FaultSpec::RestoreLink(a, b)
            }
            "remove_link" => {
                let (a, b) = link()?;
                FaultSpec::RemoveLink(a, b)
            }
            "add_link" => {
                let (a, b) = link()?;
                FaultSpec::AddLink(a, b)
            }
            "degrade_link" => {
                let (a, b) = link()?;
                let loss = field_prob(json, "loss")?.unwrap_or(0.0);
                let burst = match json.get("burst") {
                    None => None,
                    Some(burst) => {
                        let required = |key: &str| -> Result<f64, String> {
                            field_prob(burst, key)?
                                .ok_or_else(|| format!("`burst` needs a probability `{key}`"))
                        };
                        Some((
                            required("p_enter")?,
                            required("p_exit")?,
                            field_prob(burst, "loss_bad")?.unwrap_or(1.0),
                        ))
                    }
                };
                let asymmetric = json
                    .get("asymmetric")
                    .and_then(Json::as_bool)
                    .unwrap_or(false);
                FaultSpec::DegradeLink {
                    a,
                    b,
                    loss,
                    burst,
                    asymmetric,
                }
            }
            "restore_link_quality" => {
                let (a, b) = link()?;
                FaultSpec::RestoreLinkQuality(a, b)
            }
            "partition" => {
                let groups = json
                    .get("groups")
                    .and_then(Json::as_array)
                    .ok_or("fault `partition` needs `groups`: an array of node-index arrays")?;
                let mut parsed = Vec::new();
                for group in groups {
                    let members = group
                        .as_array()
                        .ok_or("each partition group must be an array of node indices")?;
                    let mut nodes = Vec::new();
                    for member in members {
                        let n = member
                            .as_f64()
                            .filter(|n| {
                                n.is_finite()
                                    && *n >= 0.0
                                    && *n <= f64::from(u32::MAX)
                                    && n.trunc() == *n
                            })
                            .ok_or("partition group members must be node indices")?;
                        nodes.push(n as u32);
                    }
                    parsed.push(nodes);
                }
                if parsed.len() < 2 {
                    return Err("a partition needs at least two groups".to_string());
                }
                FaultSpec::Partition { groups: parsed }
            }
            "heal_partition" => FaultSpec::HealPartition,
            "flap_link" => {
                let (a, b) = link()?;
                let period_ticks = field_u32(json, "period_ticks")
                    .filter(|p| *p >= 2)
                    .ok_or("fault `flap_link` needs `period_ticks` of at least 2")?;
                let count = field_u32(json, "count")
                    .filter(|c| *c >= 1)
                    .ok_or("fault `flap_link` needs a positive `count`")?;
                FaultSpec::FlapLink {
                    a,
                    b,
                    period_ticks,
                    count,
                }
            }
            "rolling_restart" => {
                let interval_ticks = field_u32(json, "interval_ticks")
                    .filter(|i| *i >= 2)
                    .ok_or("fault `rolling_restart` needs `interval_ticks` of at least 2")?;
                let down_ticks = field_u32(json, "down_ticks")
                    .filter(|d| *d >= 1 && *d < interval_ticks)
                    .ok_or("`down_ticks` must be in [1, interval_ticks)")?;
                let count = field_u32(json, "count")
                    .filter(|c| *c >= 1)
                    .ok_or("fault `rolling_restart` needs a positive `count`")?;
                FaultSpec::RollingRestart {
                    interval_ticks,
                    down_ticks,
                    count,
                }
            }
            other => return Err(format!("unknown fault kind `{other}`")),
        })
    }
}

/// A flow-engine workload attachment: which traffic shape to offer and for how many
/// service ticks. The arrival process is the open-loop Poisson law when
/// `rate_per_tick` is set, otherwise every flow starts up front.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlowsSpec {
    /// Number of sampled source/destination pairs.
    pub pairs: u32,
    /// Service ticks the workload runs for before reporting.
    pub duration_ticks: u32,
    /// Open-loop Poisson arrival rate in flows per service tick; `None` = up-front.
    pub rate_per_tick: Option<f64>,
    /// Traffic matrix label: `"uniform"` (default) or `"permutation"`.
    pub permutation: bool,
    /// Extra salt mixed into the workload seed, so repeated attachments offer
    /// decorrelated flow populations; `None` = the engine default.
    pub seed_salt: Option<u64>,
}

impl FlowsSpec {
    /// Serializes to the wire object.
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("pairs".to_string(), Json::num(f64::from(self.pairs))),
            (
                "duration_ticks".to_string(),
                Json::num(f64::from(self.duration_ticks)),
            ),
        ];
        if let Some(rate) = self.rate_per_tick {
            members.push(("rate_per_tick".to_string(), Json::num(rate)));
        }
        if self.permutation {
            members.push(("matrix".to_string(), Json::str("permutation")));
        }
        if let Some(salt) = self.seed_salt {
            members.push(("seed_salt".to_string(), Json::num(salt as f64)));
        }
        Json::Obj(members)
    }

    /// Parses the wire object.
    pub fn from_json(json: &Json) -> Result<FlowsSpec, String> {
        let pairs = field_u32(json, "pairs").ok_or("flows need a `pairs` count")?;
        let duration_ticks =
            field_u32(json, "duration_ticks").ok_or("flows need a `duration_ticks` window")?;
        if pairs == 0 || duration_ticks == 0 {
            return Err("`pairs` and `duration_ticks` must be positive".to_string());
        }
        let rate_per_tick = json.get("rate_per_tick").and_then(Json::as_f64);
        if let Some(rate) = rate_per_tick {
            if !rate.is_finite() || rate <= 0.0 {
                return Err("`rate_per_tick` must be positive".to_string());
            }
        }
        let permutation = match json.get("matrix").and_then(Json::as_str) {
            None | Some("uniform") => false,
            Some("permutation") => true,
            Some(other) => return Err(format!("unknown matrix `{other}`")),
        };
        let seed_salt = json
            .get("seed_salt")
            .and_then(Json::as_f64)
            .map(|s| s as u64);
        Ok(FlowsSpec {
            pairs,
            duration_ticks,
            rate_per_tick,
            permutation,
            seed_salt,
        })
    }
}

/// One command a client issued against the session.
///
/// Mutating commands ([`Command::Fault`], [`Command::Flows`]) change simulated
/// state when applied; control commands ([`Command::Step`], [`Command::Run`],
/// [`Command::Pause`], [`Command::Shutdown`]) steer the driver and are logged for
/// audit but replayed as no-ops — the ticks they caused are already captured by the
/// stamps of later entries and the log's final tick.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Inject one fault.
    Fault(FaultSpec),
    /// Attach one flow-engine workload.
    Flows(FlowsSpec),
    /// Advance the session by this many ticks.
    Step {
        /// Number of ticks to execute.
        ticks: u32,
    },
    /// Enter free-running mode, optionally until the given simulated second.
    Run {
        /// Simulated-time deadline in seconds; `None` runs until paused.
        until_s: Option<f64>,
    },
    /// Leave free-running mode.
    Pause,
    /// End the session: the driver finalizes the command log and returns.
    Shutdown,
}

impl Command {
    /// True for commands that change simulated state when applied.
    pub fn is_mutating(&self) -> bool {
        matches!(self, Command::Fault(_) | Command::Flows(_))
    }

    /// Serializes to the wire object (`{"op":...,...}`).
    pub fn to_json(&self) -> Json {
        match self {
            Command::Fault(spec) => with_op("fault", spec.to_json()),
            Command::Flows(spec) => with_op("flows", spec.to_json()),
            Command::Step { ticks } => Json::obj([
                ("op", Json::str("step")),
                ("ticks", Json::num(f64::from(*ticks))),
            ]),
            Command::Run { until_s } => match until_s {
                Some(until) => {
                    Json::obj([("op", Json::str("run")), ("until_s", Json::num(*until))])
                }
                None => Json::obj([("op", Json::str("run"))]),
            },
            Command::Pause => Json::obj([("op", Json::str("pause"))]),
            Command::Shutdown => Json::obj([("op", Json::str("shutdown"))]),
        }
    }

    /// Parses the wire object.
    pub fn from_json(json: &Json) -> Result<Command, String> {
        let op = json
            .get("op")
            .and_then(Json::as_str)
            .ok_or("command needs a string `op`")?;
        Ok(match op {
            "fault" => Command::Fault(FaultSpec::from_json(json)?),
            "flows" => Command::Flows(FlowsSpec::from_json(json)?),
            "step" => Command::Step {
                ticks: field_u32(json, "ticks").unwrap_or(1).max(1),
            },
            "run" => Command::Run {
                until_s: json.get("until_s").and_then(Json::as_f64),
            },
            "pause" => Command::Pause,
            "shutdown" => Command::Shutdown,
            other => return Err(format!("unknown command op `{other}`")),
        })
    }
}

/// Prepends the `op` member to a serialized payload object.
fn with_op(op: &str, payload: Json) -> Json {
    let mut members = vec![("op".to_string(), Json::str(op))];
    if let Json::Obj(rest) = payload {
        members.extend(rest);
    }
    Json::Obj(members)
}

/// An optional probability member: absent is `Ok(None)`, present-but-invalid
/// (non-numeric, non-finite, outside `[0, 1]`) is a hard reject — the session core
/// clamps defensively, but a typo'd `loss` of `30` should fail loudly at the wire.
fn field_prob(json: &Json, key: &str) -> Result<Option<f64>, String> {
    match json.get(key) {
        None => Ok(None),
        Some(value) => match value.as_f64() {
            Some(p) if p.is_finite() && (0.0..=1.0).contains(&p) => Ok(Some(p)),
            _ => Err(format!("`{key}` must be a probability in [0, 1]")),
        },
    }
}

fn field_u32(json: &Json, key: &str) -> Option<u32> {
    let n = json.get(key)?.as_f64()?;
    if n.is_finite() && n >= 0.0 && n <= f64::from(u32::MAX) && n.trunc() == n {
        Some(n as u32)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_command_round_trips_through_json() {
        let commands = [
            Command::Fault(FaultSpec::FailController(1)),
            Command::Fault(FaultSpec::ReviveController(1)),
            Command::Fault(FaultSpec::FailSwitch(9)),
            Command::Fault(FaultSpec::ReviveSwitch(9)),
            Command::Fault(FaultSpec::FailLink(3, 4)),
            Command::Fault(FaultSpec::RestoreLink(3, 4)),
            Command::Fault(FaultSpec::RemoveLink(5, 6)),
            Command::Fault(FaultSpec::AddLink(5, 6)),
            Command::Fault(FaultSpec::DegradeLink {
                a: 3,
                b: 4,
                loss: 0.3,
                burst: None,
                asymmetric: false,
            }),
            Command::Fault(FaultSpec::DegradeLink {
                a: 3,
                b: 4,
                loss: 0.0,
                burst: Some((0.15, 0.35, 1.0)),
                asymmetric: true,
            }),
            Command::Fault(FaultSpec::RestoreLinkQuality(3, 4)),
            Command::Fault(FaultSpec::Partition {
                groups: vec![vec![0, 2, 3], vec![1, 4, 5]],
            }),
            Command::Fault(FaultSpec::HealPartition),
            Command::Fault(FaultSpec::FlapLink {
                a: 2,
                b: 5,
                period_ticks: 8,
                count: 3,
            }),
            Command::Fault(FaultSpec::RollingRestart {
                interval_ticks: 20,
                down_ticks: 10,
                count: 2,
            }),
            Command::Flows(FlowsSpec {
                pairs: 200,
                duration_ticks: 30,
                rate_per_tick: Some(12.5),
                permutation: true,
                seed_salt: Some(42),
            }),
            Command::Flows(FlowsSpec {
                pairs: 10,
                duration_ticks: 5,
                rate_per_tick: None,
                permutation: false,
                seed_salt: None,
            }),
            Command::Step { ticks: 3 },
            Command::Run {
                until_s: Some(30.0),
            },
            Command::Run { until_s: None },
            Command::Pause,
            Command::Shutdown,
        ];
        for cmd in commands {
            let wire = cmd.to_json().to_string();
            let parsed = Command::from_json(&Json::parse(&wire).unwrap()).unwrap();
            assert_eq!(parsed, cmd, "round-trip of {wire}");
            // The wire form itself is stable under a second encode.
            assert_eq!(parsed.to_json().to_string(), wire);
        }
    }

    #[test]
    fn malformed_commands_are_rejected_with_reasons() {
        for (src, needle) in [
            (r#"{"ticks":1}"#, "needs a string `op`"),
            (r#"{"op":"warp"}"#, "unknown command op"),
            (r#"{"op":"fault"}"#, "needs a string `kind`"),
            (r#"{"op":"fault","kind":"melt"}"#, "unknown fault kind"),
            (
                r#"{"op":"fault","kind":"fail_link","a":1}"#,
                "needs `a` and `b`",
            ),
            (r#"{"op":"flows","pairs":10}"#, "duration_ticks"),
            (
                r#"{"op":"flows","pairs":10,"duration_ticks":5,"rate_per_tick":0}"#,
                "must be positive",
            ),
            (
                r#"{"op":"flows","pairs":10,"duration_ticks":5,"matrix":"spiral"}"#,
                "unknown matrix",
            ),
            (
                r#"{"op":"fault","kind":"degrade_link","a":1,"b":2,"loss":30}"#,
                "probability in [0, 1]",
            ),
            (
                r#"{"op":"fault","kind":"degrade_link","a":1,"b":2,"burst":{"p_enter":0.1}}"#,
                "needs a probability `p_exit`",
            ),
            (
                r#"{"op":"fault","kind":"partition","groups":[[0,1,2]]}"#,
                "at least two groups",
            ),
            (
                r#"{"op":"fault","kind":"partition","groups":[[0,-1],[2]]}"#,
                "node indices",
            ),
            (
                r#"{"op":"fault","kind":"flap_link","a":1,"b":2,"period_ticks":1,"count":3}"#,
                "at least 2",
            ),
            (
                r#"{"op":"fault","kind":"rolling_restart","interval_ticks":4,"down_ticks":4,"count":1}"#,
                "[1, interval_ticks)",
            ),
        ] {
            let err = Command::from_json(&Json::parse(src).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{src}: got `{err}`");
        }
    }

    #[test]
    fn step_defaults_to_one_tick() {
        let cmd = Command::from_json(&Json::parse(r#"{"op":"step"}"#).unwrap()).unwrap();
        assert_eq!(cmd, Command::Step { ticks: 1 });
    }
}
