//! The deterministic session core: a simulated SDN advanced tick by tick.
//!
//! A [`Session`] owns the [`SdnNetwork`], the attached flow workloads, and a bounded
//! ring of probe samples. It exposes exactly two mutations — [`Session::step`] (one
//! simulated tick) and [`Session::apply`] (one [`Command`]) — and everything it
//! computes derives from simulated state alone. No wall clock, no thread identity,
//! no host entropy reaches this module (the `sdn-stancheck` scope rule enforces
//! that statically), which is why a live interactive session and a single-threaded
//! replay of its command log produce bit-identical final reports.

use crate::command::{Command, FaultSpec, FlowsSpec};
use renaissance::scenario::{Workload, WorkloadReport, WorkloadTick};
use renaissance::{ControllerConfig, HarnessConfig, SdnNetwork};
use renaissance_bench::report::Json;
use sdn_metrics::{RingPage, RingSink};
use sdn_netsim::{BurstLoss, SimDuration};
use sdn_topology::{builders, NodeId};
use sdn_traffic::{Arrival, FlowEngineWorkload, FlowMix, FlowSetConfig, TrafficMatrix};
use std::collections::BTreeMap;

/// Everything needed to rebuild a session from scratch — the command log's header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionConfig {
    /// Topology name understood by [`builders::by_name`] (`fat_tree(8)`, `B4`, ...).
    pub topology: String,
    /// Number of controllers.
    pub controllers: usize,
    /// Harness seed; every random draw in the session derives from it.
    pub seed: u64,
    /// Simulated milliseconds one tick advances the network by.
    pub tick_millis: u64,
    /// Probe samples retained by the telemetry ring.
    pub ring_capacity: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            topology: "fat_tree(4)".to_string(),
            controllers: 2,
            seed: 7,
            tick_millis: 1000,
            ring_capacity: 4096,
        }
    }
}

impl SessionConfig {
    /// Serializes to the command-log header object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("topology", Json::str(self.topology.as_str())),
            ("controllers", Json::num(self.controllers as f64)),
            ("seed", Json::num(self.seed as f64)),
            ("tick_millis", Json::num(self.tick_millis as f64)),
            ("ring_capacity", Json::num(self.ring_capacity as f64)),
        ])
    }

    /// Parses the command-log header object.
    pub fn from_json(json: &Json) -> Result<SessionConfig, String> {
        let topology = json
            .get("topology")
            .and_then(Json::as_str)
            .ok_or("session config needs a `topology` name")?
            .to_string();
        let int = |key: &str| -> Result<u64, String> {
            json.get(key)
                .and_then(Json::as_f64)
                .filter(|n| n.is_finite() && *n >= 0.0)
                .map(|n| n as u64)
                .ok_or_else(|| format!("session config needs a numeric `{key}`"))
        };
        Ok(SessionConfig {
            topology,
            controllers: int("controllers")? as usize,
            seed: int("seed")?,
            tick_millis: int("tick_millis")?.max(1),
            ring_capacity: int("ring_capacity")? as usize,
        })
    }
}

/// One deferred fault action, fired by [`Session::step`] when its tick arrives.
/// Multi-phase faults (flaps, rolling restarts) expand into these at apply time,
/// so a replay flips exactly the same nodes and links on exactly the same ticks.
#[derive(Clone, Copy, Debug)]
enum ScheduledFault {
    LinkDown(NodeId, NodeId),
    LinkUp(NodeId, NodeId),
    ControllerDown(NodeId),
    ControllerUp(NodeId),
}

/// One attached flow workload, advanced a service tick per session tick.
struct FlowSlot {
    /// Stable attachment label (`flows-<n>`), carried into the finished report.
    label: String,
    workload: FlowEngineWorkload,
    ticks_done: u32,
    duration: u32,
}

/// A long-running simulated SDN session. See the module docs for the contract.
pub struct Session {
    config: SessionConfig,
    net: SdnNetwork,
    flows: Vec<FlowSlot>,
    finished_flows: Vec<WorkloadReport>,
    flows_attached: u64,
    samples: RingSink,
    tick: u64,
    commands_applied: u64,
    /// Deferred fault phases keyed by the absolute tick they fire at; a `BTreeMap`
    /// keeps the draining order deterministic.
    scheduled: BTreeMap<u64, Vec<ScheduledFault>>,
    /// Links cut by the partition currently in force, in cut order; drained by
    /// `heal_partition`.
    partitioned: Vec<(NodeId, NodeId)>,
}

impl Session {
    /// Boots a session: builds the named topology, wires the SDN, and records the
    /// tick-0 probe sample.
    ///
    /// # Panics
    ///
    /// Panics when `config.topology` is not a name [`builders::by_name`] accepts.
    pub fn new(config: SessionConfig) -> Self {
        let topology = builders::by_name(&config.topology, config.controllers);
        let n_switches = topology.switch_count();
        let net = SdnNetwork::new(
            topology,
            ControllerConfig::for_network(config.controllers, n_switches),
            HarnessConfig::default().with_seed(config.seed),
        );
        let samples = RingSink::new(config.ring_capacity.max(1));
        let mut session = Session {
            config,
            net,
            flows: Vec::new(),
            finished_flows: Vec::new(),
            flows_attached: 0,
            samples,
            tick: 0,
            commands_applied: 0,
            scheduled: BTreeMap::new(),
            partitioned: Vec::new(),
        };
        session.record_sample();
        session
    }

    /// The configuration the session was booted from.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Ticks executed so far.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Current simulated time in seconds.
    pub fn sim_secs(&self) -> f64 {
        self.net.now().as_secs_f64()
    }

    /// The telemetry ring backing `/log` and `/stream`.
    pub fn samples(&self) -> &RingSink {
        &self.samples
    }

    /// The newest probe sample, if any.
    pub fn last_sample(&self) -> Option<(u64, String)> {
        let next = self.samples.next_seq();
        self.samples
            .page(next.saturating_sub(1), 1)
            .lines
            .into_iter()
            .next()
    }

    /// Advances the session by one tick: fires any fault phases scheduled for this
    /// tick, runs the simulator for the configured slice, drives every attached
    /// flow workload one service tick, retires workloads whose window ended, and
    /// records a probe sample.
    pub fn step(&mut self) {
        self.tick += 1;
        if let Some(actions) = self.scheduled.remove(&self.tick) {
            for action in actions {
                match action {
                    ScheduledFault::LinkDown(a, b) => self.net.fail_link(a, b),
                    ScheduledFault::LinkUp(a, b) => self.net.restore_link(a, b),
                    ScheduledFault::ControllerDown(id) => self.net.fail_controller(id),
                    ScheduledFault::ControllerUp(id) => self.net.revive_controller(id),
                }
            }
        }
        self.net
            .run_for(SimDuration::from_millis(self.config.tick_millis));
        for slot in &mut self.flows {
            slot.ticks_done += 1;
            let tick = WorkloadTick {
                index: slot.ticks_done,
                elapsed: SimDuration::from_secs(u64::from(slot.ticks_done)),
            };
            slot.workload.tick(&mut self.net, tick);
        }
        while let Some(pos) = self.flows.iter().position(|s| s.ticks_done >= s.duration) {
            let mut slot = self.flows.remove(pos);
            let mut report = slot.workload.finish(&mut self.net);
            report.push_note("attached_as", slot.label.clone());
            report.push_note("finished_at_tick", self.tick.to_string());
            self.finished_flows.push(report);
        }
        self.record_sample();
    }

    /// Applies one command at the current tick boundary and returns its outcome
    /// object. Control commands (`step`/`run`/`pause`/`shutdown`) do not touch
    /// simulated state here — the driver (or replay's tick stamps) realizes their
    /// effect — but they still count toward `commands_applied` so live and replayed
    /// reports agree.
    pub fn apply(&mut self, cmd: &Command) -> Json {
        self.commands_applied += 1;
        match cmd {
            Command::Fault(spec) => self.apply_fault(spec),
            Command::Flows(spec) => self.attach_flows(*spec),
            Command::Step { .. } | Command::Run { .. } | Command::Pause | Command::Shutdown => {
                Json::obj([("ok", Json::Bool(true))])
            }
        }
    }

    fn apply_fault(&mut self, spec: &FaultSpec) -> Json {
        let outcome: Result<String, String> =
            match spec {
                FaultSpec::FailController(n) => self.checked_controller(*n).map(|id| {
                    self.net.fail_controller(id);
                    format!("controller {n} failed")
                }),
                FaultSpec::ReviveController(n) => self.checked_controller(*n).map(|id| {
                    self.net.revive_controller(id);
                    format!("controller {n} revived")
                }),
                FaultSpec::FailSwitch(n) => self.checked_switch(*n).map(|id| {
                    self.net.fail_switch(id);
                    format!("switch {n} failed")
                }),
                FaultSpec::ReviveSwitch(n) => self.checked_switch(*n).map(|id| {
                    self.net.revive_switch(id);
                    format!("switch {n} revived")
                }),
                FaultSpec::FailLink(a, b) => self.checked_link(*a, *b).map(|(a, b)| {
                    self.net.fail_link(a, b);
                    format!("link {}-{} failed", a.index(), b.index())
                }),
                FaultSpec::RestoreLink(a, b) => self.checked_link(*a, *b).map(|(a, b)| {
                    self.net.restore_link(a, b);
                    format!("link {}-{} restored", a.index(), b.index())
                }),
                FaultSpec::RemoveLink(a, b) => self.checked_link(*a, *b).and_then(|(a, b)| {
                    if self.net.remove_link(a, b) {
                        Ok(format!("link {}-{} removed", a.index(), b.index()))
                    } else {
                        Err(format!("link {}-{} not present", a.index(), b.index()))
                    }
                }),
                FaultSpec::AddLink(a, b) => {
                    let (a, b) = (NodeId::new(*a), NodeId::new(*b));
                    if a == b {
                        Err("cannot add a self-loop".to_string())
                    } else {
                        self.net.add_link(a, b);
                        Ok(format!("link {}-{} added", a.index(), b.index()))
                    }
                }
                FaultSpec::DegradeLink {
                    a,
                    b,
                    loss,
                    burst,
                    asymmetric,
                } => self.checked_present_link(*a, *b).map(|(a, b)| {
                    let base = self.net.default_link_config();
                    let config = match burst {
                        Some((p_enter, p_exit, loss_bad)) => {
                            base.with_burst(BurstLoss::gilbert(*p_enter, *p_exit, *loss_bad))
                        }
                        None => base.with_loss(*loss),
                    };
                    if *asymmetric {
                        self.net.set_link_config_directed(a, b, config);
                    } else {
                        self.net.set_link_config(a, b, config);
                    }
                    let direction = if *asymmetric { " (one-way)" } else { "" };
                    format!("link {}-{} degraded{direction}", a.index(), b.index())
                }),
                FaultSpec::RestoreLinkQuality(a, b) => {
                    self.checked_present_link(*a, *b).and_then(|(a, b)| {
                        if self.net.clear_link_config(a, b) {
                            Ok(format!("link {}-{} quality restored", a.index(), b.index()))
                        } else {
                            Err(format!(
                                "link {}-{} has no quality override",
                                a.index(),
                                b.index()
                            ))
                        }
                    })
                }
                FaultSpec::Partition { groups } => self.apply_partition(groups),
                FaultSpec::HealPartition => {
                    if self.partitioned.is_empty() {
                        Err("no partition is in force".to_string())
                    } else {
                        let cut = std::mem::take(&mut self.partitioned);
                        for &(a, b) in &cut {
                            self.net.restore_link(a, b);
                        }
                        Ok(format!("partition healed, {} links restored", cut.len()))
                    }
                }
                FaultSpec::FlapLink {
                    a,
                    b,
                    period_ticks,
                    count,
                } => self.checked_present_link(*a, *b).and_then(|(a, b)| {
                    if *period_ticks < 2 || *count == 0 {
                        return Err("flap needs period_ticks >= 2 and a positive count".to_string());
                    }
                    let down_for = u64::from(*period_ticks / 2);
                    let start = self.tick + 1;
                    for cycle in 0..u64::from(*count) {
                        let down_at = start + cycle * u64::from(*period_ticks);
                        self.schedule(down_at, ScheduledFault::LinkDown(a, b));
                        self.schedule(down_at + down_for, ScheduledFault::LinkUp(a, b));
                    }
                    Ok(format!(
                        "link {}-{} flapping {count} times, period {period_ticks} ticks",
                        a.index(),
                        b.index()
                    ))
                }),
                FaultSpec::RollingRestart {
                    interval_ticks,
                    down_ticks,
                    count,
                } => {
                    let controllers = self.net.controller_ids();
                    if *count == 0 || *down_ticks == 0 || *interval_ticks <= *down_ticks {
                        Err("rolling restart needs count >= 1 and down_ticks in [1, interval_ticks)"
                        .to_string())
                    } else if controllers.len() < *count as usize {
                        Err(format!(
                            "rolling restart of {count} controllers but only {} exist",
                            controllers.len()
                        ))
                    } else {
                        let start = self.tick + 1;
                        for (index, id) in controllers.iter().take(*count as usize).enumerate() {
                            let down_at = start + index as u64 * u64::from(*interval_ticks);
                            self.schedule(down_at, ScheduledFault::ControllerDown(*id));
                            self.schedule(
                                down_at + u64::from(*down_ticks),
                                ScheduledFault::ControllerUp(*id),
                            );
                        }
                        Ok(format!(
                        "rolling restart of {count} controllers, one every {interval_ticks} ticks"
                    ))
                    }
                }
            };
        match outcome {
            Ok(detail) => Json::obj([
                ("ok", Json::Bool(true)),
                ("applied", spec.to_json()),
                ("detail", Json::str(detail)),
            ]),
            Err(error) => Json::obj([("ok", Json::Bool(false)), ("error", Json::str(error))]),
        }
    }

    fn checked_controller(&self, n: u32) -> Result<NodeId, String> {
        let id = NodeId::new(n);
        if self.net.controller_ids().contains(&id) {
            Ok(id)
        } else {
            Err(format!("no controller with index {n}"))
        }
    }

    fn checked_switch(&self, n: u32) -> Result<NodeId, String> {
        let id = NodeId::new(n);
        if self.net.switch_ids().contains(&id) {
            Ok(id)
        } else {
            Err(format!("no switch with index {n}"))
        }
    }

    fn checked_link(&self, a: u32, b: u32) -> Result<(NodeId, NodeId), String> {
        let (a, b) = (NodeId::new(a), NodeId::new(b));
        let graph = self.net.sim().topology();
        if !graph.contains_node(a) || !graph.contains_node(b) {
            Err(format!(
                "link {}-{}: unknown endpoint",
                a.index(),
                b.index()
            ))
        } else {
            Ok((a, b))
        }
    }

    /// Like [`Session::checked_link`], but also requires the link to currently
    /// exist in `Gc` — quality overrides and flaps on a never-built link would be
    /// silent no-ops, so they are rejected up front instead.
    fn checked_present_link(&self, a: u32, b: u32) -> Result<(NodeId, NodeId), String> {
        let (a, b) = self.checked_link(a, b)?;
        if self.net.sim().topology().has_link(a, b) {
            Ok((a, b))
        } else {
            Err(format!("link {}-{} not present", a.index(), b.index()))
        }
    }

    /// Enqueues one deferred fault phase for `tick`.
    fn schedule(&mut self, tick: u64, fault: ScheduledFault) {
        self.scheduled.entry(tick).or_default().push(fault);
    }

    /// Cuts every link crossing the given groups (first-wins membership, unlisted
    /// nodes keep all their links — the same semantics as the scenario schedule's
    /// explicit partition) and remembers the cut set for `heal_partition`.
    fn apply_partition(&mut self, groups: &[Vec<u32>]) -> Result<String, String> {
        if !self.partitioned.is_empty() {
            return Err("a partition is already in force (heal it first)".to_string());
        }
        if groups.len() < 2 {
            return Err("a partition needs at least two groups".to_string());
        }
        let mut assignment: BTreeMap<NodeId, usize> = BTreeMap::new();
        for (index, group) in groups.iter().enumerate() {
            for &n in group {
                let id = NodeId::new(n);
                if !self.net.sim().topology().contains_node(id) {
                    return Err(format!("partition group {index}: unknown node {n}"));
                }
                assignment.entry(id).or_insert(index);
            }
        }
        let cut: Vec<(NodeId, NodeId)> = self
            .net
            .sim()
            .topology()
            .links()
            .filter_map(|link| {
                let group_a = assignment.get(&link.a)?;
                let group_b = assignment.get(&link.b)?;
                (group_a != group_b).then_some((link.a, link.b))
            })
            .collect();
        if cut.is_empty() {
            return Err("partition cuts no links".to_string());
        }
        for &(a, b) in &cut {
            self.net.fail_link(a, b);
        }
        let count = cut.len();
        self.partitioned = cut;
        Ok(format!("partition cut {count} links"))
    }

    fn attach_flows(&mut self, spec: FlowsSpec) -> Json {
        let label = format!("flows-{}", self.flows_attached);
        let arrival = match spec.rate_per_tick {
            Some(rate_per_tick) => Arrival::Poisson { rate_per_tick },
            None => Arrival::UpFront,
        };
        let config = FlowSetConfig {
            matrix: if spec.permutation {
                TrafficMatrix::Permutation
            } else {
                TrafficMatrix::Uniform
            },
            mix: FlowMix::datacenter(),
            arrival,
            pairs: spec.pairs,
            fan_out: None,
        };
        let mut workload = FlowEngineWorkload::new(config, spec.duration_ticks);
        // Decorrelate repeated attachments by default; an explicit salt wins.
        let salt = spec
            .seed_salt
            .unwrap_or(0x666c_6f77 ^ self.flows_attached.rotate_left(17));
        workload = workload.with_seed_salt(salt);
        workload.start(&mut self.net);
        self.flows_attached += 1;
        self.flows.push(FlowSlot {
            label: label.clone(),
            workload,
            ticks_done: 0,
            duration: spec.duration_ticks.max(1),
        });
        Json::obj([
            ("ok", Json::Bool(true)),
            ("attached_as", Json::str(label)),
            ("flows", Json::num(config_flow_count(&spec) as f64)),
        ])
    }

    // ------------------------------------------------------------------
    // Snapshots
    // ------------------------------------------------------------------

    /// The current communication graph `Gc`: node sets and links.
    pub fn topology_json(&self) -> Json {
        let topo = self.net.topology();
        let graph = self.net.sim().topology();
        let ids = |nodes: &[NodeId]| {
            Json::arr(
                nodes
                    .iter()
                    .map(|n| Json::num(f64::from(n.index())))
                    .collect::<Vec<_>>(),
            )
        };
        let links = graph
            .links()
            .map(|l| {
                Json::arr([
                    Json::num(f64::from(l.a.index())),
                    Json::num(f64::from(l.b.index())),
                ])
            })
            .collect::<Vec<_>>();
        Json::obj([
            ("name", Json::str(topo.name.as_str())),
            ("controllers", ids(&topo.controllers)),
            ("switches", ids(&topo.switches)),
            ("links", Json::Arr(links)),
            (
                "generation",
                Json::num(self.net.sim().topology_generation() as f64),
            ),
            (
                "expected_diameter",
                Json::num(f64::from(topo.expected_diameter)),
            ),
        ])
    }

    /// One node's state, or `None` when the index names no node.
    pub fn node_json(&self, index: u32) -> Option<Json> {
        let id = NodeId::new(index);
        let topo = self.net.topology();
        let live = !self.net.sim().is_node_failed(id);
        let degree = self.net.sim().operational_graph().degree(id);
        if let Some(controller) = self.net.controller(id) {
            return Some(Json::obj([
                ("id", Json::num(f64::from(index))),
                ("kind", Json::str("controller")),
                ("live", Json::Bool(live)),
                ("degree", Json::num(degree as f64)),
                ("c_resets", Json::num(controller.c_resets() as f64)),
                (
                    "state_version",
                    Json::num(controller.state_version() as f64),
                ),
            ]));
        }
        if let Some(switch) = self.net.switch(id) {
            return Some(Json::obj([
                ("id", Json::num(f64::from(index))),
                ("kind", Json::str("switch")),
                ("live", Json::Bool(live)),
                ("degree", Json::num(degree as f64)),
                ("rules", Json::num(switch.rules().len() as f64)),
            ]));
        }
        // A failed node's state machine may be unreachable; report what the
        // topology still knows.
        if topo.controllers.contains(&id) || topo.switches.contains(&id) {
            return Some(Json::obj([
                ("id", Json::num(f64::from(index))),
                (
                    "kind",
                    Json::str(if topo.controllers.contains(&id) {
                        "controller"
                    } else {
                        "switch"
                    }),
                ),
                ("live", Json::Bool(live)),
                ("degree", Json::num(degree as f64)),
            ]));
        }
        None
    }

    /// The legitimacy verdict (paper, Definition 1) with every violated condition.
    pub fn legitimacy_json(&self) -> Json {
        let report = self.net.legitimacy_report();
        Json::obj([
            ("legitimate", Json::Bool(report.is_legitimate())),
            (
                "issues",
                Json::arr(
                    report
                        .issues
                        .iter()
                        .map(|i| Json::str(i.as_str()))
                        .collect::<Vec<_>>(),
                ),
            ),
        ])
    }

    /// Counters of the session so far: tick, simulated time, control-plane message
    /// totals, rule footprint, workload and sample accounting.
    pub fn metrics_json(&self) -> Json {
        let metrics = self.net.metrics();
        Json::obj([
            ("tick", Json::num(self.tick as f64)),
            ("sim_s", Json::num(self.sim_secs())),
            (
                "events",
                Json::num(self.net.sim().events_processed() as f64),
            ),
            ("msgs_sent", Json::num(metrics.total_sent() as f64)),
            ("msgs_received", Json::num(metrics.total_received() as f64)),
            ("bytes_sent", Json::num(metrics.total_bytes_sent() as f64)),
            ("rules_total", Json::num(self.net.total_rules() as f64)),
            (
                "rules_max_per_switch",
                Json::num(self.net.max_rules_per_switch() as f64),
            ),
            ("flow_workloads", Json::num(self.flows.len() as f64)),
            ("flow_reports", Json::num(self.finished_flows.len() as f64)),
            ("commands", Json::num(self.commands_applied as f64)),
            ("samples_dropped", Json::num(self.samples.dropped() as f64)),
            (
                "pending_faults",
                Json::num(self.scheduled.values().map(Vec::len).sum::<usize>() as f64),
            ),
            (
                "partitioned_links",
                Json::num(self.partitioned.len() as f64),
            ),
            (
                "link_config_warnings",
                Json::num(self.net.link_config_warnings() as f64),
            ),
        ])
    }

    /// A page of the telemetry ring: retained probe samples with sequence `>= from`.
    pub fn log_json(&self, from: u64, limit: usize) -> Json {
        let page = self.samples.page(from, limit);
        page_json(&page)
    }

    /// The canonical end-of-session report — the artifact the replay test compares
    /// byte for byte. Everything here derives from simulated state only.
    pub fn final_report(&self) -> Json {
        let flow_reports = self
            .finished_flows
            .iter()
            .map(workload_report_json)
            .collect::<Vec<_>>();
        Json::obj([
            ("config", self.config.to_json()),
            ("final_tick", Json::num(self.tick as f64)),
            ("sim_s", Json::num(self.sim_secs())),
            ("legitimacy", self.legitimacy_json()),
            ("metrics", self.metrics_json()),
            ("flow_reports", Json::Arr(flow_reports)),
            (
                "samples",
                Json::obj([
                    ("pushed", Json::num(self.samples.next_seq() as f64)),
                    ("dropped", Json::num(self.samples.dropped() as f64)),
                ]),
            ),
        ])
    }

    fn record_sample(&mut self) {
        let metrics = self.net.metrics();
        let report = self.net.legitimacy_report();
        let line = Json::obj([
            ("tick", Json::num(self.tick as f64)),
            ("sim_s", Json::num(self.sim_secs())),
            ("legitimate", Json::Bool(report.is_legitimate())),
            ("issues", Json::num(report.issues.len() as f64)),
            (
                "events",
                Json::num(self.net.sim().events_processed() as f64),
            ),
            ("msgs_sent", Json::num(metrics.total_sent() as f64)),
            ("rules_total", Json::num(self.net.total_rules() as f64)),
            ("flow_workloads", Json::num(self.flows.len() as f64)),
        ])
        .to_string();
        self.samples.push_line(line);
    }
}

/// Total flows a [`FlowsSpec`] expands to (no fan-out on this surface).
fn config_flow_count(spec: &FlowsSpec) -> u64 {
    u64::from(spec.pairs)
}

/// Renders a [`RingPage`] as the `/log` response object; samples are re-embedded as
/// JSON values (they were emitted by this crate, so parsing cannot fail in practice,
/// but a raw string fallback keeps the endpoint total).
pub fn page_json(page: &RingPage) -> Json {
    let lines = page
        .lines
        .iter()
        .map(|(seq, line)| {
            let sample = Json::parse(line).unwrap_or_else(|_| Json::str(line.as_str()));
            Json::obj([("seq", Json::num(*seq as f64)), ("sample", sample)])
        })
        .collect::<Vec<_>>();
    Json::obj([
        ("lines", Json::Arr(lines)),
        (
            "first_seq",
            match page.first_seq {
                Some(seq) => Json::num(seq as f64),
                None => Json::Null,
            },
        ),
        ("next", Json::num(page.next as f64)),
        ("dropped", Json::num(page.dropped as f64)),
    ])
}

/// Serializes one finished workload report: notes, per-tick series, digest summaries.
fn workload_report_json(report: &WorkloadReport) -> Json {
    let notes = report
        .notes
        .iter()
        .map(|(k, v)| (k.clone(), Json::str(v.as_str())))
        .collect::<Vec<_>>();
    let series = report
        .series
        .iter()
        .map(|s| {
            (
                s.name.clone(),
                Json::arr(s.values.iter().map(|v| Json::num(*v)).collect::<Vec<_>>()),
            )
        })
        .collect::<Vec<_>>();
    let digests = report
        .digests
        .iter()
        .map(|(name, d)| {
            (
                name.clone(),
                Json::obj([
                    ("n", Json::num(d.len() as f64)),
                    ("mean", Json::num(d.mean())),
                    ("min", Json::num(d.min())),
                    ("p50", Json::num(d.p50())),
                    ("p90", Json::num(d.p90())),
                    ("p99", Json::num(d.p99())),
                    ("max", Json::num(d.max())),
                ]),
            )
        })
        .collect::<Vec<_>>();
    Json::obj([
        ("label", Json::str(report.label.as_str())),
        ("notes", Json::Obj(notes)),
        ("series", Json::Obj(series)),
        ("digests", Json::Obj(digests)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SessionConfig {
        SessionConfig {
            topology: "grid(2,3)".to_string(),
            controllers: 2,
            seed: 11,
            tick_millis: 500,
            ring_capacity: 64,
        }
    }

    #[test]
    fn session_config_round_trips() {
        let config = tiny();
        let wire = config.to_json().to_string();
        let back = SessionConfig::from_json(&Json::parse(&wire).unwrap()).unwrap();
        assert_eq!(back, config);
    }

    #[test]
    fn stepping_twice_from_the_same_config_is_bit_identical() {
        let run = || {
            let mut s = Session::new(tiny());
            for _ in 0..20 {
                s.step();
            }
            s.apply(&Command::Fault(FaultSpec::FailLink(3, 4)));
            for _ in 0..20 {
                s.step();
            }
            s.final_report().to_string()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fault_outcomes_validate_their_victims() {
        let mut s = Session::new(tiny());
        let bad = s.apply(&Command::Fault(FaultSpec::FailSwitch(99)));
        assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));
        let good = s.apply(&Command::Fault(FaultSpec::FailSwitch(3)));
        assert_eq!(good.get("ok").and_then(Json::as_bool), Some(true));
        // Commands counted either way: outcomes are part of session history.
        assert_eq!(
            s.metrics_json().get("commands").and_then(Json::as_f64),
            Some(2.0)
        );
    }

    #[test]
    fn gray_faults_validate_and_apply() {
        let mut s = Session::new(tiny());
        for _ in 0..10 {
            s.step();
        }
        let ok = |outcome: &Json| outcome.get("ok").and_then(Json::as_bool);
        let degraded = s.apply(&Command::Fault(FaultSpec::DegradeLink {
            a: 3,
            b: 4,
            loss: 0.25,
            burst: None,
            asymmetric: false,
        }));
        assert_eq!(ok(&degraded), Some(true), "{degraded}");
        let restored = s.apply(&Command::Fault(FaultSpec::RestoreLinkQuality(3, 4)));
        assert_eq!(ok(&restored), Some(true), "{restored}");
        // Restoring again reports there is nothing left to restore.
        let nothing = s.apply(&Command::Fault(FaultSpec::RestoreLinkQuality(3, 4)));
        assert_eq!(ok(&nothing), Some(false), "{nothing}");
        // Degrading a pair that is not a link is rejected up front, not silently
        // swallowed by the simulator's warning counter.
        let no_link = s.apply(&Command::Fault(FaultSpec::DegradeLink {
            a: 2,
            b: 7,
            loss: 0.5,
            burst: None,
            asymmetric: false,
        }));
        assert_eq!(ok(&no_link), Some(false), "{no_link}");
    }

    #[test]
    fn partitions_cut_heal_and_refuse_double_cuts() {
        let mut s = Session::new(tiny());
        for _ in 0..10 {
            s.step();
        }
        let ok = |outcome: &Json| outcome.get("ok").and_then(Json::as_bool);
        let partitioned = |s: &Session| {
            s.metrics_json()
                .get("partitioned_links")
                .and_then(Json::as_f64)
        };
        // grid(2,3): splitting along the rows cuts the three vertical links.
        let groups = vec![vec![0, 2, 3, 4], vec![1, 5, 6, 7]];
        let cut = s.apply(&Command::Fault(FaultSpec::Partition {
            groups: groups.clone(),
        }));
        assert_eq!(ok(&cut), Some(true), "{cut}");
        assert_eq!(partitioned(&s), Some(3.0));
        let double = s.apply(&Command::Fault(FaultSpec::Partition { groups }));
        assert_eq!(ok(&double), Some(false), "{double}");
        let healed = s.apply(&Command::Fault(FaultSpec::HealPartition));
        assert_eq!(ok(&healed), Some(true), "{healed}");
        assert_eq!(partitioned(&s), Some(0.0));
        let nothing = s.apply(&Command::Fault(FaultSpec::HealPartition));
        assert_eq!(ok(&nothing), Some(false), "{nothing}");
    }

    #[test]
    fn flaps_and_rolling_restarts_fire_on_schedule() {
        let mut s = Session::new(tiny());
        let ok = |outcome: &Json| outcome.get("ok").and_then(Json::as_bool);
        let pending = |s: &Session| {
            s.metrics_json()
                .get("pending_faults")
                .and_then(Json::as_f64)
        };
        let flap = s.apply(&Command::Fault(FaultSpec::FlapLink {
            a: 3,
            b: 4,
            period_ticks: 4,
            count: 2,
        }));
        assert_eq!(ok(&flap), Some(true), "{flap}");
        assert_eq!(pending(&s), Some(4.0), "two down/up phases per cycle");
        let rolling = s.apply(&Command::Fault(FaultSpec::RollingRestart {
            interval_ticks: 6,
            down_ticks: 3,
            count: 2,
        }));
        assert_eq!(ok(&rolling), Some(true), "{rolling}");
        assert_eq!(pending(&s), Some(8.0));
        for _ in 0..20 {
            s.step();
        }
        assert_eq!(pending(&s), Some(0.0), "every phase fired");
        // Asking for more controllers than exist is rejected.
        let too_many = s.apply(&Command::Fault(FaultSpec::RollingRestart {
            interval_ticks: 6,
            down_ticks: 3,
            count: 9,
        }));
        assert_eq!(ok(&too_many), Some(false), "{too_many}");
    }

    #[test]
    fn flows_attach_run_and_retire_into_reports() {
        let mut s = Session::new(tiny());
        for _ in 0..30 {
            s.step();
        }
        let ack = s.apply(&Command::Flows(FlowsSpec {
            pairs: 12,
            duration_ticks: 5,
            rate_per_tick: Some(4.0),
            permutation: false,
            seed_salt: None,
        }));
        assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true));
        for _ in 0..6 {
            s.step();
        }
        let report = s.final_report();
        let flows = report.get("flow_reports").and_then(Json::as_array).unwrap();
        assert_eq!(flows.len(), 1);
        assert_eq!(
            flows[0]
                .get("notes")
                .and_then(|n| n.get("attached_as"))
                .and_then(Json::as_str),
            Some("flows-0")
        );
    }

    #[test]
    fn snapshots_are_well_formed() {
        let mut s = Session::new(tiny());
        for _ in 0..4 {
            s.step();
        }
        let topo = s.topology_json();
        assert_eq!(topo.get("name").and_then(Json::as_str), Some("Grid-2x3"));
        assert!(!topo
            .get("links")
            .and_then(Json::as_array)
            .unwrap()
            .is_empty());
        let node = s.node_json(2).unwrap();
        assert_eq!(node.get("kind").and_then(Json::as_str), Some("switch"));
        assert!(s.node_json(999).is_none());
        let log = s.log_json(0, 3);
        assert_eq!(log.get("lines").and_then(Json::as_array).unwrap().len(), 3);
        assert!(s.last_sample().is_some());
    }
}
