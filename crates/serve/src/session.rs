//! The deterministic session core: a simulated SDN advanced tick by tick.
//!
//! A [`Session`] owns the [`SdnNetwork`], the attached flow workloads, and a bounded
//! ring of probe samples. It exposes exactly two mutations — [`Session::step`] (one
//! simulated tick) and [`Session::apply`] (one [`Command`]) — and everything it
//! computes derives from simulated state alone. No wall clock, no thread identity,
//! no host entropy reaches this module (the `sdn-stancheck` scope rule enforces
//! that statically), which is why a live interactive session and a single-threaded
//! replay of its command log produce bit-identical final reports.

use crate::command::{Command, FaultSpec, FlowsSpec};
use renaissance::scenario::{Workload, WorkloadReport, WorkloadTick};
use renaissance::{ControllerConfig, HarnessConfig, SdnNetwork};
use renaissance_bench::report::Json;
use sdn_metrics::{RingPage, RingSink};
use sdn_netsim::SimDuration;
use sdn_topology::{builders, NodeId};
use sdn_traffic::{Arrival, FlowEngineWorkload, FlowMix, FlowSetConfig, TrafficMatrix};

/// Everything needed to rebuild a session from scratch — the command log's header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionConfig {
    /// Topology name understood by [`builders::by_name`] (`fat_tree(8)`, `B4`, ...).
    pub topology: String,
    /// Number of controllers.
    pub controllers: usize,
    /// Harness seed; every random draw in the session derives from it.
    pub seed: u64,
    /// Simulated milliseconds one tick advances the network by.
    pub tick_millis: u64,
    /// Probe samples retained by the telemetry ring.
    pub ring_capacity: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            topology: "fat_tree(4)".to_string(),
            controllers: 2,
            seed: 7,
            tick_millis: 1000,
            ring_capacity: 4096,
        }
    }
}

impl SessionConfig {
    /// Serializes to the command-log header object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("topology", Json::str(self.topology.as_str())),
            ("controllers", Json::num(self.controllers as f64)),
            ("seed", Json::num(self.seed as f64)),
            ("tick_millis", Json::num(self.tick_millis as f64)),
            ("ring_capacity", Json::num(self.ring_capacity as f64)),
        ])
    }

    /// Parses the command-log header object.
    pub fn from_json(json: &Json) -> Result<SessionConfig, String> {
        let topology = json
            .get("topology")
            .and_then(Json::as_str)
            .ok_or("session config needs a `topology` name")?
            .to_string();
        let int = |key: &str| -> Result<u64, String> {
            json.get(key)
                .and_then(Json::as_f64)
                .filter(|n| n.is_finite() && *n >= 0.0)
                .map(|n| n as u64)
                .ok_or_else(|| format!("session config needs a numeric `{key}`"))
        };
        Ok(SessionConfig {
            topology,
            controllers: int("controllers")? as usize,
            seed: int("seed")?,
            tick_millis: int("tick_millis")?.max(1),
            ring_capacity: int("ring_capacity")? as usize,
        })
    }
}

/// One attached flow workload, advanced a service tick per session tick.
struct FlowSlot {
    /// Stable attachment label (`flows-<n>`), carried into the finished report.
    label: String,
    workload: FlowEngineWorkload,
    ticks_done: u32,
    duration: u32,
}

/// A long-running simulated SDN session. See the module docs for the contract.
pub struct Session {
    config: SessionConfig,
    net: SdnNetwork,
    flows: Vec<FlowSlot>,
    finished_flows: Vec<WorkloadReport>,
    flows_attached: u64,
    samples: RingSink,
    tick: u64,
    commands_applied: u64,
}

impl Session {
    /// Boots a session: builds the named topology, wires the SDN, and records the
    /// tick-0 probe sample.
    ///
    /// # Panics
    ///
    /// Panics when `config.topology` is not a name [`builders::by_name`] accepts.
    pub fn new(config: SessionConfig) -> Self {
        let topology = builders::by_name(&config.topology, config.controllers);
        let n_switches = topology.switch_count();
        let net = SdnNetwork::new(
            topology,
            ControllerConfig::for_network(config.controllers, n_switches),
            HarnessConfig::default().with_seed(config.seed),
        );
        let samples = RingSink::new(config.ring_capacity.max(1));
        let mut session = Session {
            config,
            net,
            flows: Vec::new(),
            finished_flows: Vec::new(),
            flows_attached: 0,
            samples,
            tick: 0,
            commands_applied: 0,
        };
        session.record_sample();
        session
    }

    /// The configuration the session was booted from.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Ticks executed so far.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Current simulated time in seconds.
    pub fn sim_secs(&self) -> f64 {
        self.net.now().as_secs_f64()
    }

    /// The telemetry ring backing `/log` and `/stream`.
    pub fn samples(&self) -> &RingSink {
        &self.samples
    }

    /// The newest probe sample, if any.
    pub fn last_sample(&self) -> Option<(u64, String)> {
        let next = self.samples.next_seq();
        self.samples
            .page(next.saturating_sub(1), 1)
            .lines
            .into_iter()
            .next()
    }

    /// Advances the session by one tick: runs the simulator for the configured
    /// slice, drives every attached flow workload one service tick, retires
    /// workloads whose window ended, and records a probe sample.
    pub fn step(&mut self) {
        self.tick += 1;
        self.net
            .run_for(SimDuration::from_millis(self.config.tick_millis));
        for slot in &mut self.flows {
            slot.ticks_done += 1;
            let tick = WorkloadTick {
                index: slot.ticks_done,
                elapsed: SimDuration::from_secs(u64::from(slot.ticks_done)),
            };
            slot.workload.tick(&mut self.net, tick);
        }
        while let Some(pos) = self.flows.iter().position(|s| s.ticks_done >= s.duration) {
            let mut slot = self.flows.remove(pos);
            let mut report = slot.workload.finish(&mut self.net);
            report.push_note("attached_as", slot.label.clone());
            report.push_note("finished_at_tick", self.tick.to_string());
            self.finished_flows.push(report);
        }
        self.record_sample();
    }

    /// Applies one command at the current tick boundary and returns its outcome
    /// object. Control commands (`step`/`run`/`pause`/`shutdown`) do not touch
    /// simulated state here — the driver (or replay's tick stamps) realizes their
    /// effect — but they still count toward `commands_applied` so live and replayed
    /// reports agree.
    pub fn apply(&mut self, cmd: &Command) -> Json {
        self.commands_applied += 1;
        match cmd {
            Command::Fault(spec) => self.apply_fault(*spec),
            Command::Flows(spec) => self.attach_flows(*spec),
            Command::Step { .. } | Command::Run { .. } | Command::Pause | Command::Shutdown => {
                Json::obj([("ok", Json::Bool(true))])
            }
        }
    }

    fn apply_fault(&mut self, spec: FaultSpec) -> Json {
        let outcome: Result<String, String> = match spec {
            FaultSpec::FailController(n) => self.checked_controller(n).map(|id| {
                self.net.fail_controller(id);
                format!("controller {n} failed")
            }),
            FaultSpec::ReviveController(n) => self.checked_controller(n).map(|id| {
                self.net.revive_controller(id);
                format!("controller {n} revived")
            }),
            FaultSpec::FailSwitch(n) => self.checked_switch(n).map(|id| {
                self.net.fail_switch(id);
                format!("switch {n} failed")
            }),
            FaultSpec::ReviveSwitch(n) => self.checked_switch(n).map(|id| {
                self.net.revive_switch(id);
                format!("switch {n} revived")
            }),
            FaultSpec::FailLink(a, b) => self.checked_link(a, b).map(|(a, b)| {
                self.net.fail_link(a, b);
                format!("link {}-{} failed", a.index(), b.index())
            }),
            FaultSpec::RestoreLink(a, b) => self.checked_link(a, b).map(|(a, b)| {
                self.net.restore_link(a, b);
                format!("link {}-{} restored", a.index(), b.index())
            }),
            FaultSpec::RemoveLink(a, b) => self.checked_link(a, b).and_then(|(a, b)| {
                if self.net.remove_link(a, b) {
                    Ok(format!("link {}-{} removed", a.index(), b.index()))
                } else {
                    Err(format!("link {}-{} not present", a.index(), b.index()))
                }
            }),
            FaultSpec::AddLink(a, b) => {
                let (a, b) = (NodeId::new(a), NodeId::new(b));
                if a == b {
                    Err("cannot add a self-loop".to_string())
                } else {
                    self.net.add_link(a, b);
                    Ok(format!("link {}-{} added", a.index(), b.index()))
                }
            }
        };
        match outcome {
            Ok(detail) => Json::obj([
                ("ok", Json::Bool(true)),
                ("applied", spec.to_json()),
                ("detail", Json::str(detail)),
            ]),
            Err(error) => Json::obj([("ok", Json::Bool(false)), ("error", Json::str(error))]),
        }
    }

    fn checked_controller(&self, n: u32) -> Result<NodeId, String> {
        let id = NodeId::new(n);
        if self.net.controller_ids().contains(&id) {
            Ok(id)
        } else {
            Err(format!("no controller with index {n}"))
        }
    }

    fn checked_switch(&self, n: u32) -> Result<NodeId, String> {
        let id = NodeId::new(n);
        if self.net.switch_ids().contains(&id) {
            Ok(id)
        } else {
            Err(format!("no switch with index {n}"))
        }
    }

    fn checked_link(&self, a: u32, b: u32) -> Result<(NodeId, NodeId), String> {
        let (a, b) = (NodeId::new(a), NodeId::new(b));
        let graph = self.net.sim().topology();
        if !graph.contains_node(a) || !graph.contains_node(b) {
            Err(format!(
                "link {}-{}: unknown endpoint",
                a.index(),
                b.index()
            ))
        } else {
            Ok((a, b))
        }
    }

    fn attach_flows(&mut self, spec: FlowsSpec) -> Json {
        let label = format!("flows-{}", self.flows_attached);
        let arrival = match spec.rate_per_tick {
            Some(rate_per_tick) => Arrival::Poisson { rate_per_tick },
            None => Arrival::UpFront,
        };
        let config = FlowSetConfig {
            matrix: if spec.permutation {
                TrafficMatrix::Permutation
            } else {
                TrafficMatrix::Uniform
            },
            mix: FlowMix::datacenter(),
            arrival,
            pairs: spec.pairs,
            fan_out: None,
        };
        let mut workload = FlowEngineWorkload::new(config, spec.duration_ticks);
        // Decorrelate repeated attachments by default; an explicit salt wins.
        let salt = spec
            .seed_salt
            .unwrap_or(0x666c_6f77 ^ self.flows_attached.rotate_left(17));
        workload = workload.with_seed_salt(salt);
        workload.start(&mut self.net);
        self.flows_attached += 1;
        self.flows.push(FlowSlot {
            label: label.clone(),
            workload,
            ticks_done: 0,
            duration: spec.duration_ticks.max(1),
        });
        Json::obj([
            ("ok", Json::Bool(true)),
            ("attached_as", Json::str(label)),
            ("flows", Json::num(config_flow_count(&spec) as f64)),
        ])
    }

    // ------------------------------------------------------------------
    // Snapshots
    // ------------------------------------------------------------------

    /// The current communication graph `Gc`: node sets and links.
    pub fn topology_json(&self) -> Json {
        let topo = self.net.topology();
        let graph = self.net.sim().topology();
        let ids = |nodes: &[NodeId]| {
            Json::arr(
                nodes
                    .iter()
                    .map(|n| Json::num(f64::from(n.index())))
                    .collect::<Vec<_>>(),
            )
        };
        let links = graph
            .links()
            .map(|l| {
                Json::arr([
                    Json::num(f64::from(l.a.index())),
                    Json::num(f64::from(l.b.index())),
                ])
            })
            .collect::<Vec<_>>();
        Json::obj([
            ("name", Json::str(topo.name.as_str())),
            ("controllers", ids(&topo.controllers)),
            ("switches", ids(&topo.switches)),
            ("links", Json::Arr(links)),
            (
                "generation",
                Json::num(self.net.sim().topology_generation() as f64),
            ),
            (
                "expected_diameter",
                Json::num(f64::from(topo.expected_diameter)),
            ),
        ])
    }

    /// One node's state, or `None` when the index names no node.
    pub fn node_json(&self, index: u32) -> Option<Json> {
        let id = NodeId::new(index);
        let topo = self.net.topology();
        let live = !self.net.sim().is_node_failed(id);
        let degree = self.net.sim().operational_graph().degree(id);
        if let Some(controller) = self.net.controller(id) {
            return Some(Json::obj([
                ("id", Json::num(f64::from(index))),
                ("kind", Json::str("controller")),
                ("live", Json::Bool(live)),
                ("degree", Json::num(degree as f64)),
                ("c_resets", Json::num(controller.c_resets() as f64)),
                (
                    "state_version",
                    Json::num(controller.state_version() as f64),
                ),
            ]));
        }
        if let Some(switch) = self.net.switch(id) {
            return Some(Json::obj([
                ("id", Json::num(f64::from(index))),
                ("kind", Json::str("switch")),
                ("live", Json::Bool(live)),
                ("degree", Json::num(degree as f64)),
                ("rules", Json::num(switch.rules().len() as f64)),
            ]));
        }
        // A failed node's state machine may be unreachable; report what the
        // topology still knows.
        if topo.controllers.contains(&id) || topo.switches.contains(&id) {
            return Some(Json::obj([
                ("id", Json::num(f64::from(index))),
                (
                    "kind",
                    Json::str(if topo.controllers.contains(&id) {
                        "controller"
                    } else {
                        "switch"
                    }),
                ),
                ("live", Json::Bool(live)),
                ("degree", Json::num(degree as f64)),
            ]));
        }
        None
    }

    /// The legitimacy verdict (paper, Definition 1) with every violated condition.
    pub fn legitimacy_json(&self) -> Json {
        let report = self.net.legitimacy_report();
        Json::obj([
            ("legitimate", Json::Bool(report.is_legitimate())),
            (
                "issues",
                Json::arr(
                    report
                        .issues
                        .iter()
                        .map(|i| Json::str(i.as_str()))
                        .collect::<Vec<_>>(),
                ),
            ),
        ])
    }

    /// Counters of the session so far: tick, simulated time, control-plane message
    /// totals, rule footprint, workload and sample accounting.
    pub fn metrics_json(&self) -> Json {
        let metrics = self.net.metrics();
        Json::obj([
            ("tick", Json::num(self.tick as f64)),
            ("sim_s", Json::num(self.sim_secs())),
            (
                "events",
                Json::num(self.net.sim().events_processed() as f64),
            ),
            ("msgs_sent", Json::num(metrics.total_sent() as f64)),
            ("msgs_received", Json::num(metrics.total_received() as f64)),
            ("bytes_sent", Json::num(metrics.total_bytes_sent() as f64)),
            ("rules_total", Json::num(self.net.total_rules() as f64)),
            (
                "rules_max_per_switch",
                Json::num(self.net.max_rules_per_switch() as f64),
            ),
            ("flow_workloads", Json::num(self.flows.len() as f64)),
            ("flow_reports", Json::num(self.finished_flows.len() as f64)),
            ("commands", Json::num(self.commands_applied as f64)),
            ("samples_dropped", Json::num(self.samples.dropped() as f64)),
        ])
    }

    /// A page of the telemetry ring: retained probe samples with sequence `>= from`.
    pub fn log_json(&self, from: u64, limit: usize) -> Json {
        let page = self.samples.page(from, limit);
        page_json(&page)
    }

    /// The canonical end-of-session report — the artifact the replay test compares
    /// byte for byte. Everything here derives from simulated state only.
    pub fn final_report(&self) -> Json {
        let flow_reports = self
            .finished_flows
            .iter()
            .map(workload_report_json)
            .collect::<Vec<_>>();
        Json::obj([
            ("config", self.config.to_json()),
            ("final_tick", Json::num(self.tick as f64)),
            ("sim_s", Json::num(self.sim_secs())),
            ("legitimacy", self.legitimacy_json()),
            ("metrics", self.metrics_json()),
            ("flow_reports", Json::Arr(flow_reports)),
            (
                "samples",
                Json::obj([
                    ("pushed", Json::num(self.samples.next_seq() as f64)),
                    ("dropped", Json::num(self.samples.dropped() as f64)),
                ]),
            ),
        ])
    }

    fn record_sample(&mut self) {
        let metrics = self.net.metrics();
        let report = self.net.legitimacy_report();
        let line = Json::obj([
            ("tick", Json::num(self.tick as f64)),
            ("sim_s", Json::num(self.sim_secs())),
            ("legitimate", Json::Bool(report.is_legitimate())),
            ("issues", Json::num(report.issues.len() as f64)),
            (
                "events",
                Json::num(self.net.sim().events_processed() as f64),
            ),
            ("msgs_sent", Json::num(metrics.total_sent() as f64)),
            ("rules_total", Json::num(self.net.total_rules() as f64)),
            ("flow_workloads", Json::num(self.flows.len() as f64)),
        ])
        .to_string();
        self.samples.push_line(line);
    }
}

/// Total flows a [`FlowsSpec`] expands to (no fan-out on this surface).
fn config_flow_count(spec: &FlowsSpec) -> u64 {
    u64::from(spec.pairs)
}

/// Renders a [`RingPage`] as the `/log` response object; samples are re-embedded as
/// JSON values (they were emitted by this crate, so parsing cannot fail in practice,
/// but a raw string fallback keeps the endpoint total).
pub fn page_json(page: &RingPage) -> Json {
    let lines = page
        .lines
        .iter()
        .map(|(seq, line)| {
            let sample = Json::parse(line).unwrap_or_else(|_| Json::str(line.as_str()));
            Json::obj([("seq", Json::num(*seq as f64)), ("sample", sample)])
        })
        .collect::<Vec<_>>();
    Json::obj([
        ("lines", Json::Arr(lines)),
        (
            "first_seq",
            match page.first_seq {
                Some(seq) => Json::num(seq as f64),
                None => Json::Null,
            },
        ),
        ("next", Json::num(page.next as f64)),
        ("dropped", Json::num(page.dropped as f64)),
    ])
}

/// Serializes one finished workload report: notes, per-tick series, digest summaries.
fn workload_report_json(report: &WorkloadReport) -> Json {
    let notes = report
        .notes
        .iter()
        .map(|(k, v)| (k.clone(), Json::str(v.as_str())))
        .collect::<Vec<_>>();
    let series = report
        .series
        .iter()
        .map(|s| {
            (
                s.name.clone(),
                Json::arr(s.values.iter().map(|v| Json::num(*v)).collect::<Vec<_>>()),
            )
        })
        .collect::<Vec<_>>();
    let digests = report
        .digests
        .iter()
        .map(|(name, d)| {
            (
                name.clone(),
                Json::obj([
                    ("n", Json::num(d.len() as f64)),
                    ("mean", Json::num(d.mean())),
                    ("min", Json::num(d.min())),
                    ("p50", Json::num(d.p50())),
                    ("p90", Json::num(d.p90())),
                    ("p99", Json::num(d.p99())),
                    ("max", Json::num(d.max())),
                ]),
            )
        })
        .collect::<Vec<_>>();
    Json::obj([
        ("label", Json::str(report.label.as_str())),
        ("notes", Json::Obj(notes)),
        ("series", Json::Obj(series)),
        ("digests", Json::Obj(digests)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SessionConfig {
        SessionConfig {
            topology: "grid(2,3)".to_string(),
            controllers: 2,
            seed: 11,
            tick_millis: 500,
            ring_capacity: 64,
        }
    }

    #[test]
    fn session_config_round_trips() {
        let config = tiny();
        let wire = config.to_json().to_string();
        let back = SessionConfig::from_json(&Json::parse(&wire).unwrap()).unwrap();
        assert_eq!(back, config);
    }

    #[test]
    fn stepping_twice_from_the_same_config_is_bit_identical() {
        let run = || {
            let mut s = Session::new(tiny());
            for _ in 0..20 {
                s.step();
            }
            s.apply(&Command::Fault(FaultSpec::FailLink(3, 4)));
            for _ in 0..20 {
                s.step();
            }
            s.final_report().to_string()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fault_outcomes_validate_their_victims() {
        let mut s = Session::new(tiny());
        let bad = s.apply(&Command::Fault(FaultSpec::FailSwitch(99)));
        assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));
        let good = s.apply(&Command::Fault(FaultSpec::FailSwitch(3)));
        assert_eq!(good.get("ok").and_then(Json::as_bool), Some(true));
        // Commands counted either way: outcomes are part of session history.
        assert_eq!(
            s.metrics_json().get("commands").and_then(Json::as_f64),
            Some(2.0)
        );
    }

    #[test]
    fn flows_attach_run_and_retire_into_reports() {
        let mut s = Session::new(tiny());
        for _ in 0..30 {
            s.step();
        }
        let ack = s.apply(&Command::Flows(FlowsSpec {
            pairs: 12,
            duration_ticks: 5,
            rate_per_tick: Some(4.0),
            permutation: false,
            seed_salt: None,
        }));
        assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true));
        for _ in 0..6 {
            s.step();
        }
        let report = s.final_report();
        let flows = report.get("flow_reports").and_then(Json::as_array).unwrap();
        assert_eq!(flows.len(), 1);
        assert_eq!(
            flows[0]
                .get("notes")
                .and_then(|n| n.get("attached_as"))
                .and_then(Json::as_str),
            Some("flows-0")
        );
    }

    #[test]
    fn snapshots_are_well_formed() {
        let mut s = Session::new(tiny());
        for _ in 0..4 {
            s.step();
        }
        let topo = s.topology_json();
        assert_eq!(topo.get("name").and_then(Json::as_str), Some("Grid-2x3"));
        assert!(!topo
            .get("links")
            .and_then(Json::as_array)
            .unwrap()
            .is_empty());
        let node = s.node_json(2).unwrap();
        assert_eq!(node.get("kind").and_then(Json::as_str), Some("switch"));
        assert!(s.node_json(999).is_none());
        let log = s.log_json(0, 3);
        assert_eq!(log.get("lines").and_then(Json::as_array).unwrap().len(), 3);
        assert!(s.last_sample().is_some());
    }
}
