//! The HTTP/1.1 transport: the only module of this crate allowed to touch the host
//! clock and host threads.
//!
//! Architecture: accept threads never touch the [`Session`]. Each HTTP request is
//! parsed into a typed [`Request`] and enqueued; the driver thread (the caller of
//! [`Server::run`]) owns the session, answers snapshot requests between ticks, and
//! stamps every [`Command`] onto the tick it was applied at before appending it to
//! the [`CommandLog`]. Wall-clock reads stop at this boundary — the session core
//! never sees them, which is what keeps a recorded session replayable bit for bit
//! (`sdn-stancheck` enforces the boundary statically via its serve/transport scope
//! rule).
//!
//! The protocol is dependency-free HTTP/1.1, one request per connection
//! (`Connection: close`), JSON bodies both ways; `GET /stream` switches to chunked
//! transfer and tails the probe-sample feed.

use crate::command::{Command, FaultSpec, FlowsSpec};
use crate::log::CommandLog;
use crate::session::Session;
use renaissance_bench::report::Json;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

/// Largest accepted request head + body, in bytes.
const MAX_REQUEST_BYTES: usize = 64 * 1024;
/// Lines a slow `/stream` consumer may lag before the oldest are dropped.
const MAX_STREAM_BACKLOG: usize = 1024;

/// One typed request for the driver.
enum Request {
    Topology,
    Node(u32),
    Legitimacy,
    Metrics,
    LogPage { from: u64, limit: usize },
    Command(Command),
}

/// The driver's answer to one request.
struct Reply {
    status: u16,
    body: Json,
}

struct Pending {
    request: Request,
    reply: mpsc::Sender<Reply>,
}

/// One `/stream` subscriber's feed.
struct StreamSub {
    /// Buffered lines plus the closed flag.
    feed: Mutex<(VecDeque<String>, bool)>,
    ready: Condvar,
}

struct Inner {
    queue: VecDeque<Pending>,
    running: bool,
    until_s: Option<f64>,
    shutdown: bool,
    subscribers: Vec<Arc<StreamSub>>,
}

struct Shared {
    inner: Mutex<Inner>,
    wake: Condvar,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A bound service: listener plus the session it will drive.
///
/// [`Server::bind`] starts accepting connections immediately (requests queue up);
/// [`Server::run`] drives the session until a `shutdown` command arrives and
/// returns the final report with the sealed command log.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    session: Session,
    pace: Duration,
    started: Instant,
    accept: thread::JoinHandle<()>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts the
    /// accept loop.
    pub fn bind(session: Session, addr: &str) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                running: false,
                until_s: None,
                shutdown: false,
                subscribers: Vec::new(),
            }),
            wake: Condvar::new(),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = thread::spawn(move || accept_loop(listener, accept_shared));
        Ok(Server {
            addr,
            shared,
            session,
            pace: Duration::ZERO,
            started: Instant::now(),
            accept,
        })
    }

    /// Wall-clock pause between ticks in free-running mode — purely cosmetic pacing
    /// for human watchers; simulated results are identical at any pace.
    pub fn with_pace_millis(mut self, millis: u64) -> Self {
        self.pace = Duration::from_millis(millis);
        self
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Drives the session until shutdown. Returns the final report and the sealed
    /// command log (whose recorded report equals the returned one).
    pub fn run(mut self) -> (Json, CommandLog) {
        let shared = Arc::clone(&self.shared);
        let mut log = CommandLog::new(self.session.config().clone());
        loop {
            let pending: Vec<Pending> = {
                let mut inner = shared.lock();
                while inner.queue.is_empty() && !inner.running && !inner.shutdown {
                    inner = shared.wake.wait(inner).unwrap_or_else(|e| e.into_inner());
                }
                inner.queue.drain(..).collect()
            };
            for p in pending {
                self.handle(p, &mut log);
            }
            let (running, until_s, shutdown) = {
                let inner = shared.lock();
                (inner.running, inner.until_s, inner.shutdown)
            };
            if shutdown {
                break;
            }
            if running {
                self.session.step();
                self.broadcast();
                if let Some(until) = until_s {
                    if self.session.sim_secs() >= until {
                        shared.lock().running = false;
                    }
                }
                if !self.pace.is_zero() {
                    thread::sleep(self.pace);
                }
            }
        }
        let report = self.session.final_report();
        log.finalize(self.session.tick(), report.clone());
        // Close every stream, answer stragglers, and unblock the accept loop.
        {
            let mut inner = shared.lock();
            for sub in inner.subscribers.drain(..) {
                sub.feed.lock().unwrap_or_else(|e| e.into_inner()).1 = true;
                sub.ready.notify_all();
            }
            for p in inner.queue.drain(..) {
                let _ = p.reply.send(Reply {
                    status: 410,
                    body: Json::obj([("error", Json::str("session is shut down"))]),
                });
            }
        }
        let _ = TcpStream::connect(self.addr);
        let _ = self.accept.join();
        (report, log)
    }

    fn handle(&mut self, p: Pending, log: &mut CommandLog) {
        let reply = match p.request {
            Request::Topology => Reply {
                status: 200,
                body: self.session.topology_json(),
            },
            Request::Node(id) => match self.session.node_json(id) {
                Some(body) => Reply { status: 200, body },
                None => Reply {
                    status: 404,
                    body: Json::obj([("error", Json::str(format!("no node {id}")))]),
                },
            },
            Request::Legitimacy => Reply {
                status: 200,
                body: self.session.legitimacy_json(),
            },
            Request::Metrics => {
                let mut body = self.session.metrics_json();
                // Transport-only annotation: wall-clock uptime never enters the
                // session state or the replayable report.
                push_member(
                    &mut body,
                    "uptime_s",
                    Json::num(self.started.elapsed().as_secs_f64()),
                );
                Reply { status: 200, body }
            }
            Request::LogPage { from, limit } => Reply {
                status: 200,
                body: self.session.log_json(from, limit),
            },
            Request::Command(cmd) => {
                log.push(self.session.tick(), cmd.clone());
                let mut body = self.session.apply(&cmd);
                match cmd {
                    Command::Step { ticks } => {
                        for _ in 0..ticks {
                            self.session.step();
                            self.broadcast();
                        }
                    }
                    Command::Run { until_s } => {
                        let mut inner = self.shared.lock();
                        inner.running = true;
                        inner.until_s = until_s;
                    }
                    Command::Pause => self.shared.lock().running = false,
                    Command::Shutdown => self.shared.lock().shutdown = true,
                    Command::Fault(_) | Command::Flows(_) => {}
                }
                let status = if body.get("ok").and_then(Json::as_bool) == Some(false) {
                    409
                } else {
                    200
                };
                push_member(&mut body, "tick", Json::num(self.session.tick() as f64));
                Reply { status, body }
            }
        };
        let _ = p.reply.send(reply);
    }

    /// Fans the newest probe sample out to every `/stream` subscriber, dropping
    /// subscribers whose connection closed and the oldest backlog of slow ones.
    fn broadcast(&self) {
        let Some((_, line)) = self.session.last_sample() else {
            return;
        };
        let mut inner = self.shared.lock();
        inner.subscribers.retain(|sub| {
            let mut feed = sub.feed.lock().unwrap_or_else(|e| e.into_inner());
            if feed.1 {
                return false;
            }
            if feed.0.len() >= MAX_STREAM_BACKLOG {
                feed.0.pop_front();
            }
            feed.0.push_back(line.clone());
            sub.ready.notify_all();
            true
        });
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.lock().shutdown {
            break;
        }
        if let Ok(stream) = stream {
            let shared = Arc::clone(&shared);
            thread::spawn(move || handle_connection(stream, shared));
        }
    }
}

fn handle_connection(mut stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let (method, target, body) = match read_request(&mut stream) {
        Ok(parts) => parts,
        Err(error) => {
            write_json(&mut stream, 400, &Json::obj([("error", Json::str(error))]));
            return;
        }
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target, String::new()),
    };
    if method == "GET" && path == "/stream" {
        stream_connection(stream, shared);
        return;
    }
    match route(&method, &path, &query, &body) {
        Ok(request) => {
            let (tx, rx) = mpsc::channel();
            {
                let mut inner = shared.lock();
                if inner.shutdown {
                    write_json(
                        &mut stream,
                        410,
                        &Json::obj([("error", Json::str("session is shut down"))]),
                    );
                    return;
                }
                inner.queue.push_back(Pending { request, reply: tx });
            }
            shared.wake.notify_all();
            match rx.recv_timeout(Duration::from_secs(60)) {
                Ok(reply) => write_json(&mut stream, reply.status, &reply.body),
                Err(_) => write_json(
                    &mut stream,
                    504,
                    &Json::obj([("error", Json::str("driver did not answer in time"))]),
                ),
            }
        }
        Err((status, error)) => {
            write_json(
                &mut stream,
                status,
                &Json::obj([("error", Json::str(error))]),
            );
        }
    }
}

/// Maps `(method, path)` onto a typed request, or `(status, message)` on error.
fn route(method: &str, path: &str, query: &str, body: &str) -> Result<Request, (u16, String)> {
    let body_json = || -> Result<Json, (u16, String)> {
        if body.trim().is_empty() {
            Ok(Json::obj::<String>([]))
        } else {
            Json::parse(body).map_err(|e| (400, format!("bad JSON body: {e}")))
        }
    };
    match (method, path) {
        ("GET", "/topology") => Ok(Request::Topology),
        ("GET", "/legitimacy") => Ok(Request::Legitimacy),
        ("GET", "/metrics") => Ok(Request::Metrics),
        ("GET", "/log") => Ok(Request::LogPage {
            from: query_num(query, "from").unwrap_or(0.0) as u64,
            limit: query_num(query, "limit").unwrap_or(100.0).max(0.0) as usize,
        }),
        ("GET", _) if path.starts_with("/nodes/") => {
            let id = path["/nodes/".len()..]
                .parse::<u32>()
                .map_err(|_| (400, format!("bad node id in `{path}`")))?;
            Ok(Request::Node(id))
        }
        ("POST", "/faults") => {
            let spec = FaultSpec::from_json(&body_json()?).map_err(|e| (400, e))?;
            Ok(Request::Command(Command::Fault(spec)))
        }
        ("POST", "/flows") => {
            let spec = FlowsSpec::from_json(&body_json()?).map_err(|e| (400, e))?;
            Ok(Request::Command(Command::Flows(spec)))
        }
        ("POST", "/step") => {
            let ticks = query_num(query, "ticks")
                .or_else(|| body_json().ok()?.get("ticks")?.as_f64())
                .unwrap_or(1.0)
                .max(1.0) as u32;
            Ok(Request::Command(Command::Step { ticks }))
        }
        ("POST", "/run") => {
            let until_s =
                query_num(query, "until").or_else(|| body_json().ok()?.get("until_s")?.as_f64());
            Ok(Request::Command(Command::Run { until_s }))
        }
        ("POST", "/pause") => Ok(Request::Command(Command::Pause)),
        ("POST", "/shutdown") => Ok(Request::Command(Command::Shutdown)),
        _ => Err((404, format!("no route for {method} {path}"))),
    }
}

/// The numeric value of a `key=value` query parameter.
fn query_num(query: &str, key: &str) -> Option<f64> {
    query
        .split('&')
        .filter_map(|pair| pair.split_once('='))
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| v.parse().ok())
}

/// Reads one HTTP/1.1 request: request line, headers (only `Content-Length` is
/// honored), body. Bounded by [`MAX_REQUEST_BYTES`].
fn read_request(stream: &mut TcpStream) -> Result<(String, String, String), String> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_REQUEST_BYTES {
            return Err("request head too large".to_string());
        }
        let n = stream.read(&mut chunk).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("connection closed mid-request".to_string());
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_ascii_uppercase();
    let target = parts.next().unwrap_or("").to_string();
    if method.is_empty() || !target.starts_with('/') {
        return Err(format!("malformed request line `{request_line}`"));
    }
    let content_length = lines
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse::<usize>().ok())
        .unwrap_or(0);
    if content_length > MAX_REQUEST_BYTES {
        return Err("request body too large".to_string());
    }
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("connection closed mid-body".to_string());
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok((method, target, String::from_utf8_lossy(&body).into_owned()))
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn write_json(stream: &mut TcpStream, status: u16, body: &Json) {
    let text = body.to_string();
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        409 => "Conflict",
        410 => "Gone",
        504 => "Gateway Timeout",
        _ => "Error",
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{text}",
        text.len()
    );
    let _ = stream.flush();
}

/// Serves `GET /stream`: registers a subscriber and tails probe samples as one
/// chunked NDJSON response until the session shuts down or the client disconnects.
fn stream_connection(mut stream: TcpStream, shared: Arc<Shared>) {
    let sub = Arc::new(StreamSub {
        feed: Mutex::new((VecDeque::new(), false)),
        ready: Condvar::new(),
    });
    {
        let mut inner = shared.lock();
        if inner.shutdown {
            write_json(
                &mut stream,
                410,
                &Json::obj([("error", Json::str("session is shut down"))]),
            );
            return;
        }
        inner.subscribers.push(Arc::clone(&sub));
    }
    let header = "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n";
    if stream.write_all(header.as_bytes()).is_err() {
        close_sub(&sub);
        return;
    }
    loop {
        let (lines, closed) = {
            let mut feed = sub.feed.lock().unwrap_or_else(|e| e.into_inner());
            while feed.0.is_empty() && !feed.1 {
                let (next, _) = sub
                    .ready
                    .wait_timeout(feed, Duration::from_millis(500))
                    .unwrap_or_else(|e| e.into_inner());
                feed = next;
            }
            (feed.0.drain(..).collect::<Vec<_>>(), feed.1)
        };
        for line in lines {
            let payload = format!("{line}\n");
            let chunk = format!("{:x}\r\n{payload}\r\n", payload.len());
            if stream.write_all(chunk.as_bytes()).is_err() {
                close_sub(&sub);
                return;
            }
        }
        if closed {
            let _ = stream.write_all(b"0\r\n\r\n");
            let _ = stream.flush();
            return;
        }
        let _ = stream.flush();
    }
}

fn close_sub(sub: &StreamSub) {
    sub.feed.lock().unwrap_or_else(|e| e.into_inner()).1 = true;
}

/// Appends a member to a JSON object (no-op on non-objects).
fn push_member(json: &mut Json, key: &str, value: Json) {
    if let Json::Obj(members) = json {
        members.push((key.to_string(), value));
    }
}
