//! # sdn-serve — a long-running simulation service
//!
//! Wraps one deterministic [`renaissance`] simulation in a session you can poke at
//! over HTTP/JSON while it runs: inspect topology and per-node state, watch
//! legitimacy and metrics converge, page through retained probe samples, tail a
//! live telemetry stream, and inject faults or traffic mid-run.
//!
//! The design splits along the determinism boundary:
//!
//! * [`session`] — the wall-clock-free core. A [`Session`](session::Session) owns
//!   the network and advances in fixed simulated-time ticks; every mutation enters
//!   as a typed [`Command`](command::Command).
//! * [`command`] — the JSON wire format for commands (faults, flow attachment,
//!   step/run/pause/shutdown).
//! * [`log`] — the replayable [`CommandLog`](log::CommandLog): each applied
//!   command stamped with its tick, plus the final report. Replaying a log
//!   reproduces the live session's report byte for byte.
//! * [`transport`] — the dependency-free HTTP/1.1 server. The **only** module
//!   allowed to read the host clock or spawn threads (`sdn-stancheck` enforces
//!   this scope rule); server threads never touch the session, they enqueue
//!   requests the driver answers between ticks.
//!
//! Two binaries ship with the crate: `sdn-serve` (the service itself, plus
//! `sdn-serve replay <log>` for offline verification) and `sdn-serve-cli` (a
//! polling terminal client).

pub mod command;
pub mod log;
pub mod session;
pub mod transport;

pub use command::{Command, FaultSpec, FlowsSpec};
pub use log::CommandLog;
pub use session::{Session, SessionConfig};
pub use transport::Server;
