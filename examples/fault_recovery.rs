//! Fault recovery: kill a controller, a switch, and a link on the Telstra ISP topology
//! and measure how long Renaissance takes to return to a legitimate state each time —
//! the scenario family behind the paper's Figures 10–14.
//!
//! Run with: `cargo run --release --example fault_recovery`

use renaissance::{ControllerConfig, FaultInjector, HarnessConfig, SdnNetwork};
use sdn_netsim::SimDuration;
use sdn_topology::builders;

fn main() {
    let topology = builders::telstra(3);
    let mut sdn = SdnNetwork::new(
        topology,
        ControllerConfig::for_network(3, 57),
        HarnessConfig::default().with_task_delay(SimDuration::from_millis(500)),
    );
    let bootstrap = sdn
        .run_until_legitimate(SimDuration::from_millis(250), SimDuration::from_secs(600))
        .expect("bootstrap");
    println!("Telstra bootstrapped in {bootstrap}");

    // 1. Controller fail-stop: the remaining controllers must clean up its rules and
    //    manager entries everywhere (the paper's Figure 10).
    let victim_controller = sdn.controller_ids()[2];
    sdn.fail_controller(victim_controller);
    let recovery = sdn
        .run_until_legitimate(SimDuration::from_millis(250), SimDuration::from_secs(600))
        .expect("recovery after controller failure");
    println!("controller {victim_controller} failed -> recovered in {recovery}");
    let stale_rules: usize = sdn
        .switch_ids()
        .iter()
        .filter_map(|&s| sdn.switch(s))
        .map(|sw| sw.rules().rules_of(victim_controller).len())
        .sum();
    println!("  stale rules of the dead controller left anywhere: {stale_rules}");

    // 2. Switch fail-stop (the paper's Figure 12).
    let mut injector = FaultInjector::new(17);
    let victim_switch = injector.random_switch(&sdn);
    sdn.fail_switch(victim_switch);
    let recovery = sdn
        .run_until_legitimate(SimDuration::from_millis(250), SimDuration::from_secs(600))
        .expect("recovery after switch failure");
    println!("switch {victim_switch} failed -> recovered in {recovery}");

    // 3. Permanent link failure (the paper's Figure 13): the data plane fails over
    //    immediately thanks to the kappa-fault-resilient flows; the control plane then
    //    re-optimizes the primary paths.
    let links = injector.random_safe_links(&sdn, 1);
    let (a, b) = links[0];
    sdn.remove_link(a, b);
    let recovery = sdn
        .run_until_legitimate(SimDuration::from_millis(250), SimDuration::from_secs(600))
        .expect("recovery after link failure");
    println!("link {a}-{b} removed -> recovered in {recovery}");
    println!("still legitimate: {}", sdn.is_legitimate());
}
