//! Fault recovery: kill a controller, a switch, and a link on the Telstra ISP topology
//! and measure how long Renaissance takes to return to a legitimate state each time —
//! the scenario family behind the paper's Figures 10–14, declared as one scenario with
//! three fault batches.
//!
//! Run with: `cargo run --release --example fault_recovery`

use renaissance::scenario::{
    ControllerSelector, FaultEvent, LinkSelector, Scenario, SwitchSelector,
};
use sdn_netsim::SimDuration;

fn main() {
    let report = Scenario::builder("fault-recovery")
        .network("Telstra")
        .controllers(3)
        .task_delay(SimDuration::from_millis(500))
        .timeout(SimDuration::from_secs(600))
        // 1. Controller fail-stop: the remaining controllers must clean up its rules
        //    and manager entries everywhere (the paper's Figure 10).
        .fault_at(
            SimDuration::ZERO,
            FaultEvent::FailController(ControllerSelector::Index(2)),
        )
        // 2. Switch fail-stop (the paper's Figure 12), after the first recovery.
        .fault_at(
            SimDuration::from_secs(120),
            FaultEvent::FailSwitch(SwitchSelector::Random),
        )
        // 3. Permanent link failure (the paper's Figure 13): the data plane fails over
        //    immediately thanks to the kappa-fault-resilient flows; the control plane
        //    then re-optimizes the primary paths.
        .fault_at(
            SimDuration::from_secs(240),
            FaultEvent::RemoveLink(LinkSelector::RandomSafe { count: 1 }),
        )
        .seeds_from(17)
        .run();

    let run = &report.runs[0];
    println!(
        "Telstra bootstrapped in {:.2}s",
        run.bootstrap_s.expect("bootstrap")
    );
    for (fault, recovery) in run.injected.iter().zip(&run.recoveries) {
        match recovery.recovered_in_s {
            Some(seconds) => println!("{} -> recovered in {seconds:.2}s", fault.description),
            None => println!("{} -> did NOT recover", fault.description),
        }
    }
    println!("still legitimate: {}", run.final_legitimate);
    println!(
        "end of run: {} rules across switches, {} control messages total",
        run.total_rules, run.messages_sent
    );
}
