//! Data-plane throughput across a link failure — the paper's Figures 15/16 experiment:
//! an iperf-like TCP Reno flow between the two farthest switches of the EBONE topology,
//! with a mid-path link failing at second 10 — declared as a scenario workload plus a
//! scheduled mid-path fault.
//!
//! Run with: `cargo run --release --example throughput_under_failure`

use renaissance::scenario::{Endpoints, FaultEvent, LinkSelector, Scenario};
use sdn_netsim::SimDuration;
use sdn_traffic::iperf::IperfWorkload;

fn main() {
    let report = Scenario::builder("throughput-under-failure")
        .network("EBONE")
        .controllers(3)
        .task_delay(SimDuration::from_millis(500))
        .timeout(SimDuration::from_secs(1_200))
        .workload(|| Box::new(IperfWorkload::farthest(30)))
        .fault_at(
            SimDuration::from_secs(10),
            FaultEvent::RemoveLink(LinkSelector::MidPath(Endpoints::FarthestSwitches)),
        )
        .run();

    let run = &report.runs[0];
    println!(
        "EBONE bootstrapped in {:.2}s",
        run.bootstrap_s.expect("bootstrap EBONE")
    );

    let iperf = run.workload("iperf").expect("iperf workload report");
    println!(
        "iperf hosts attached to switches {} and {} (maximal distance)",
        iperf.note("src").unwrap_or("?"),
        iperf.note("dst").unwrap_or("?"),
    );
    println!(
        "failed at second 10: {}",
        run.injected
            .first()
            .map(|f| f.description.as_str())
            .expect("a mid-path link was failed")
    );

    let throughput = iperf.series("throughput_mbps").expect("throughput series");
    println!("per-second throughput (Mbit/s):");
    for (second, mbps) in throughput.iter().enumerate() {
        let marker = if second == 10 {
            "  <- link failure"
        } else {
            ""
        };
        println!("  t={second:>2}s  {mbps:>7.1}{marker}");
    }
    let retransmissions = iperf
        .series("retransmission_pct")
        .expect("retransmission series");
    let mean = throughput.iter().sum::<f64>() / throughput.len().max(1) as f64;
    let dip = throughput.iter().copied().fold(f64::MAX, f64::min);
    println!(
        "mean {:.1} Mbit/s, dip {:.1} Mbit/s, peak retransmission burst {:.1}%",
        mean,
        dip,
        retransmissions.iter().copied().fold(0.0, f64::max),
    );
}
