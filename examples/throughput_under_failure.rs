//! Data-plane throughput across a link failure — the paper's Figures 15/16 experiment:
//! an iperf-like TCP Reno flow between the two farthest switches of the EBONE topology,
//! with a mid-path link failing at second 10.
//!
//! Run with: `cargo run --release --example throughput_under_failure`

use renaissance::{ControllerConfig, HarnessConfig, SdnNetwork};
use sdn_netsim::SimDuration;
use sdn_topology::builders;
use sdn_traffic::iperf::{self, IperfConfig};

fn main() {
    let topology = builders::ebone(3);
    let mut sdn = SdnNetwork::new(
        topology,
        ControllerConfig::for_network(3, 208),
        HarnessConfig::default().with_task_delay(SimDuration::from_millis(500)),
    );
    let bootstrap = sdn
        .run_until_legitimate(SimDuration::from_millis(500), SimDuration::from_secs(1200))
        .expect("bootstrap EBONE");
    println!("EBONE bootstrapped in {bootstrap}");

    let (src, dst) = iperf::farthest_switch_pair(&sdn).expect("farthest pair");
    println!("iperf hosts attached to {src} and {dst} (maximal distance)");

    let run = iperf::run_throughput_experiment(&mut sdn, src, dst, IperfConfig::default());
    println!(
        "failed link at second 10: {:?}",
        run.failed_link.expect("a mid-path link was failed")
    );
    println!("per-second throughput (Mbit/s):");
    for (second, mbps) in run.throughput_mbps.iter().enumerate() {
        let marker = if second == 10 { "  <- link failure" } else { "" };
        println!("  t={second:>2}s  {mbps:>7.1}{marker}");
    }
    println!(
        "mean {:.1} Mbit/s, dip {:.1} Mbit/s, peak retransmission burst {:.1}%",
        run.mean_throughput(),
        run.min_throughput(),
        run.retransmission_pct.iter().copied().fold(0.0, f64::max),
    );
}
