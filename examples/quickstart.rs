//! Quickstart: bootstrap an in-band SDN control plane on Google's B4 WAN and watch it
//! reach a legitimate state — declared as a [`Scenario`] and executed by the scenario
//! runner.
//!
//! Run with: `cargo run --release --example quickstart`

use renaissance::scenario::{MetricKey, Namespace, Probe, Scenario};
use sdn_netsim::SimDuration;
use sdn_topology::builders;

fn main() {
    // The B4 inter-datacenter WAN (12 switches, diameter 5) with 3 controllers attached
    // in-band — the smallest configuration of the paper's Figure 5.
    let topology = builders::b4(3);
    println!(
        "network: {} — {} switches, {} controllers, diameter {}",
        topology.name,
        topology.switch_count(),
        topology.controller_count(),
        topology.expected_diameter
    );

    // All switches start with empty configurations: no rules, no managers. Renaissance
    // discovers the network hop by hop and installs kappa-fault-resilient flows.
    // End-of-run summaries are registered under typed metric keys.
    let iterations = MetricKey::custom(Namespace::Scenario, "controller_iterations");
    let report = Scenario::builder("quickstart")
        .topology(topology)
        .task_delay(SimDuration::from_millis(500))
        .timeout(SimDuration::from_secs(600))
        .probe(Probe::legitimacy())
        .probe(Probe::total_rules())
        .summary(iterations.clone(), |net| {
            let c0 = net.controller_ids()[0];
            net.controller(c0)
                .map(|c| c.stats().iterations)
                .unwrap_or(0) as f64
        })
        .run();

    let run = &report.runs[0];
    let bootstrap = run
        .bootstrap_s
        .expect("Renaissance bootstraps every connected topology");
    println!("bootstrapped to a legitimate state in {bootstrap:.2}s (simulated)");

    let rules = run.probe(&MetricKey::TOTAL_RULES).expect("probe series");
    println!("rule installation over time:");
    for (t, v) in rules.times_s.iter().zip(&rules.values) {
        println!("  t={t:>5.1}s  {v:>6.0} rules installed");
    }
    println!(
        "controller 0: {} do-forever iterations",
        run.metric(&iterations).unwrap_or(0.0)
    );
    println!(
        "network totals: {} control messages, {} rules installed ({} max per switch)",
        run.messages_sent, run.total_rules, run.max_rules_per_switch
    );
}
