//! Quickstart: bootstrap an in-band SDN control plane on Google's B4 WAN and watch it
//! reach a legitimate state.
//!
//! Run with: `cargo run --release --example quickstart`

use renaissance::{ControllerConfig, HarnessConfig, SdnNetwork};
use sdn_netsim::SimDuration;
use sdn_topology::builders;

fn main() {
    // The B4 inter-datacenter WAN (12 switches, diameter 5) with 3 controllers attached
    // in-band — the smallest configuration of the paper's Figure 5.
    let topology = builders::b4(3);
    println!(
        "network: {} — {} switches, {} controllers, diameter {}",
        topology.name,
        topology.switch_count(),
        topology.controller_count(),
        topology.expected_diameter
    );

    let mut sdn = SdnNetwork::new(
        topology,
        ControllerConfig::for_network(3, 12),
        HarnessConfig::default().with_task_delay(SimDuration::from_millis(500)),
    );

    // All switches start with empty configurations: no rules, no managers. Renaissance
    // discovers the network hop by hop and installs kappa-fault-resilient flows.
    let bootstrap = sdn
        .run_until_legitimate(SimDuration::from_millis(250), SimDuration::from_secs(600))
        .expect("Renaissance bootstraps every connected topology");
    println!("bootstrapped to a legitimate state in {bootstrap} (simulated)");

    for switch_id in sdn.switch_ids() {
        let switch = sdn.switch(switch_id).expect("switch exists");
        println!(
            "  switch {switch_id}: {} rules, managed by {:?}",
            switch.rules().len(),
            switch.managers().to_sorted_vec()
        );
    }

    let c0 = sdn.controller_ids()[0];
    let stats = sdn.controller(c0).expect("controller exists").stats();
    println!(
        "controller {c0}: {} do-forever iterations, {} rounds, {} queries sent",
        stats.iterations, stats.rounds_completed, stats.queries_sent
    );
    println!(
        "network totals: {} control messages, {} rules installed",
        sdn.metrics().total_sent(),
        sdn.total_rules()
    );
}
