//! Self-stabilization from an arbitrary corrupted state — the property the paper proves
//! in Theorem 2 but could not demonstrate on its Mininet prototype ("the scope of our
//! work does not include an empirical demonstration of recovery after the occurrence of
//! arbitrary transient faults", Section 6.1). In the simulation we *can* scribble over
//! every switch and controller and watch the system converge anyway.
//!
//! Run with: `cargo run --release --example self_stabilization`

use renaissance::{ControllerConfig, CorruptionPlan, FaultInjector, HarnessConfig, SdnNetwork};
use sdn_netsim::SimDuration;
use sdn_topology::builders;

fn main() {
    let topology = builders::clos(3);
    let mut sdn = SdnNetwork::new(
        topology,
        ControllerConfig::for_network(3, 20),
        HarnessConfig::default().with_task_delay(SimDuration::from_millis(500)),
    );
    sdn.run_until_legitimate(SimDuration::from_millis(250), SimDuration::from_secs(600))
        .expect("bootstrap");
    println!("Clos fabric bootstrapped; injecting arbitrary state corruption...");

    // Corrupt everything the fault model allows: garbage rules, bogus managers, wiped
    // switches, fabricated replyDB entries, corrupted round tags.
    let mut injector = FaultInjector::new(2024);
    let mutations = injector.corrupt(&mut sdn, CorruptionPlan::heavy());
    let report = sdn.legitimacy_report();
    println!("applied {mutations} state mutations; legitimacy violations now:");
    for issue in report.issues.iter().take(8) {
        println!("  - {issue}");
    }
    if report.issues.len() > 8 {
        println!("  ... and {} more", report.issues.len() - 8);
    }

    let recovery = sdn
        .run_until_legitimate(SimDuration::from_millis(250), SimDuration::from_secs(900))
        .expect("Theorem 2: the system recovers from any starting state");
    println!("self-stabilized in {recovery} (simulated)");

    // The memory-adaptive algorithm also cleaned up: only live controllers own rules.
    for switch_id in sdn.switch_ids().into_iter().take(5) {
        let switch = sdn.switch(switch_id).expect("switch");
        println!(
            "  switch {switch_id}: managers {:?}, rule owners {:?}",
            switch.managers().to_sorted_vec(),
            switch.rules().controllers_with_rules()
        );
    }
}
