//! Self-stabilization from an arbitrary corrupted state — the property the paper proves
//! in Theorem 2 but could not demonstrate on its Mininet prototype ("the scope of our
//! work does not include an empirical demonstration of recovery after the occurrence of
//! arbitrary transient faults", Section 6.1). In the simulation we *can* scribble over
//! every switch and controller and watch the system converge anyway.
//!
//! Run with: `cargo run --release --example self_stabilization`

use renaissance::scenario::{FaultEvent, MetricKey, Probe, Scenario};
use renaissance::CorruptionPlan;
use sdn_netsim::SimDuration;

fn main() {
    // Corrupt everything the fault model allows: garbage rules, bogus managers, wiped
    // switches, fabricated replyDB entries, corrupted round tags — then watch the
    // legitimacy probe fall to 0 and climb back to 1.
    let report = Scenario::builder("self-stabilization")
        .network("Clos")
        .controllers(3)
        .task_delay(SimDuration::from_millis(500))
        .timeout(SimDuration::from_secs(900))
        .fault_at(
            SimDuration::ZERO,
            FaultEvent::CorruptState(CorruptionPlan::heavy()),
        )
        .probe(Probe::legitimacy())
        .probe(Probe::total_rules())
        .sample_probes_every(SimDuration::from_secs(2))
        .seeds_from(2024)
        .run();

    let run = &report.runs[0];
    println!(
        "Clos fabric bootstrapped in {:.2}s; injecting arbitrary state corruption...",
        run.bootstrap_s.expect("bootstrap")
    );
    println!("injected: {}", run.injected[0].description);

    let recovery = run.recoveries[0]
        .recovered_in_s
        .expect("Theorem 2: the system recovers from any starting state");
    println!("self-stabilized in {recovery:.2}s (simulated)");

    println!("legitimacy / total rules over time:");
    let legitimacy = run.probe(&MetricKey::LEGITIMACY).expect("legitimacy probe");
    let rules = run.probe(&MetricKey::TOTAL_RULES).expect("rules probe");
    for ((t, legit), rules) in legitimacy
        .times_s
        .iter()
        .zip(&legitimacy.values)
        .zip(&rules.values)
    {
        let marker = if *legit > 0.0 {
            "legitimate"
        } else {
            "ILLEGITIMATE"
        };
        println!("  t={t:>6.1}s  {marker:<12} {rules:>6.0} rules");
    }
    println!(
        "final state: legitimate={}, {} rules total ({} max per switch)",
        run.final_legitimate, run.total_rules, run.max_rules_per_switch
    );
}
