//! Property-style tests of the core invariants, driven by a deterministic seeded
//! generator (`sdn-rng`) instead of an external property-testing framework:
//!
//! * kappa-fault-resilient flows really survive any single link failure on
//!   2-edge-connected topologies (the Section 2.2.2 guarantee),
//! * the first-shortest-path plan routes along shortest paths when nothing fails,
//! * the self-stabilizing channel delivers in order, exactly once, under arbitrary
//!   loss/duplication patterns,
//! * the bounded switch structures never exceed their configured capacities.
//!
//! Each test draws `CASES` random configurations from a fixed seed, so failures are
//! reproducible by construction: re-running the test replays the identical cases.

use sdn_channel::{Receiver, Sender};
use sdn_rng::Rng;
use sdn_switch::{ManagerSet, Rule, RuleTable};
use sdn_tags::Tag;
use sdn_topology::{builders, ids::Link, FlowPlanner, NodeId};

/// Number of random cases per property (the proptest setup used 24).
const CASES: u64 = 24;

/// Any single link failure on a random 2-edge-connected topology leaves every pair of
/// nodes routable through the planned fast-failover candidates.
#[test]
fn flows_survive_any_single_link_failure() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xF100D + case);
        let n_switches = rng.gen_range(4..16usize);
        let extra_links = rng.gen_range(0..8usize);
        let seed = rng.gen_range(0..1000u64);
        let net = builders::random_2connected(n_switches, extra_links, 2, seed);
        let plan = FlowPlanner::new(1).plan(&net.graph);
        let links: Vec<Link> = net.graph.links().collect();
        let failed = links[rng.gen_range(0..links.len())];
        let ttl = 4 * net.graph.node_count();
        for a in net.graph.nodes() {
            for b in net.graph.nodes() {
                if a == b {
                    continue;
                }
                let path = plan.route(a, b, |x, y| Link::new(x, y) != failed, ttl);
                assert!(
                    path.is_some(),
                    "case {case}: {a}->{b} unroutable with {failed} down"
                );
                let path = path.unwrap();
                assert_eq!(*path.last().unwrap(), b, "case {case}");
            }
        }
    }
}

/// Without failures, the planned route between any two nodes has exactly the
/// shortest-path length.
#[test]
fn primary_routes_are_shortest_paths() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x5B077E5 + case);
        let n_switches = rng.gen_range(4..14usize);
        let extra_links = rng.gen_range(0..6usize);
        let seed = rng.gen_range(0..1000u64);
        let net = builders::random_2connected(n_switches, extra_links, 0, seed);
        let plan = FlowPlanner::new(1).plan(&net.graph);
        let ttl = 4 * net.graph.node_count();
        for a in net.graph.nodes() {
            for b in net.graph.nodes() {
                if a == b {
                    continue;
                }
                let path = plan.route(a, b, |_, _| true, ttl).expect("connected");
                let expected = sdn_topology::paths::distance(&net.graph, a, b).unwrap() as usize;
                assert_eq!(path.len() - 1, expected, "case {case}: {a}->{b}");
            }
        }
    }
}

/// The self-stabilizing channel never duplicates or reorders messages, no matter which
/// pattern of transmissions is lost.
#[test]
fn channel_is_exactly_once_in_order() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xC4A7 + case);
        let pattern_len = rng.gen_range(40..200usize);
        let loss_pattern: Vec<bool> = (0..pattern_len).map(|_| rng.gen_bool(0.5)).collect();
        let mut tx: Sender<u32> = Sender::new();
        let mut rx: Receiver<u32> = Receiver::new();
        for i in 0..20u32 {
            tx.push(i);
        }
        let mut delivered = Vec::new();
        for &lose in &loss_pattern {
            if let Some(frame) = tx.frame_to_send() {
                if lose {
                    continue; // the medium dropped the data frame
                }
                let (msg, ack) = rx.on_frame(frame);
                if let Some(m) = msg {
                    delivered.push(m);
                }
                tx.on_ack(ack);
            }
        }
        // In-order, exactly-once prefix of the pushed sequence.
        let expected: Vec<u32> = (0..delivered.len() as u32).collect();
        assert_eq!(delivered, expected, "case {case}");
    }
}

/// The bounded rule table and manager set never exceed their capacities, whatever
/// sequence of insertions is applied.
#[test]
fn switch_memory_bounds_hold() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xB005D + case);
        let capacity = rng.gen_range(1..32usize);
        let n_inserts = rng.gen_range(1..200usize);
        let mut table = RuleTable::new(capacity);
        let mut managers = ManagerSet::new(capacity);
        for _ in 0..n_inserts {
            let cid = rng.gen_range(0..8u32);
            let dst = rng.gen_range(0..16u32);
            let prt = rng.gen_range(0..4u32);
            let fwd = rng.gen_range(0..8u32);
            table.insert(Rule {
                cid: NodeId::new(cid),
                sid: NodeId::new(100),
                src: None,
                dst: NodeId::new(dst),
                prt: prt as u8,
                fwd: NodeId::new(fwd),
                tag: Tag::new(cid, 1),
            });
            managers.add(NodeId::new(cid));
            assert!(table.len() <= capacity, "case {case}");
            assert!(managers.len() <= capacity, "case {case}");
        }
    }
}

/// Generated ISP-style topologies always match the requested size and diameter and stay
/// 2-edge-connected — the invariants Table 8 depends on.
#[test]
fn isp_generator_invariants() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x15B + case);
        let diameter = rng.gen_range(2..7u32);
        let extra = rng.gen_range(0..20usize);
        let n_switches = 2 * diameter as usize + extra;
        let net = builders::isp_like(n_switches, diameter, 2);
        assert_eq!(net.switch_count(), n_switches, "case {case}");
        assert_eq!(
            sdn_topology::paths::diameter(&net.switch_graph),
            diameter,
            "case {case}"
        );
        assert!(
            sdn_topology::connectivity::supports_kappa(&net.graph, 1),
            "case {case}"
        );
    }
}
