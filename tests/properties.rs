//! Property-based tests of the core invariants:
//!
//! * kappa-fault-resilient flows really survive any single link failure on
//!   2-edge-connected topologies (the Section 2.2.2 guarantee),
//! * the first-shortest-path plan routes along shortest paths when nothing fails,
//! * the self-stabilizing channel delivers in order, exactly once, under arbitrary
//!   loss/duplication patterns,
//! * the bounded switch structures never exceed their configured capacities.

use proptest::prelude::*;
use sdn_channel::{Receiver, Sender};
use sdn_switch::{ManagerSet, Rule, RuleTable};
use sdn_tags::Tag;
use sdn_topology::{builders, ids::Link, FlowPlanner, NodeId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any single link failure on a random 2-edge-connected topology leaves every pair
    /// of nodes routable through the planned fast-failover candidates.
    #[test]
    fn flows_survive_any_single_link_failure(
        n_switches in 4usize..16,
        extra_links in 0usize..8,
        seed in 0u64..1000,
        failed_index in 0usize..64,
    ) {
        let net = builders::random_2connected(n_switches, extra_links, 2, seed);
        let plan = FlowPlanner::new(1).plan(&net.graph);
        let links: Vec<Link> = net.graph.links().collect();
        let failed = links[failed_index % links.len()];
        let ttl = 4 * net.graph.node_count();
        for a in net.graph.nodes() {
            for b in net.graph.nodes() {
                if a == b {
                    continue;
                }
                let path = plan.route(a, b, |x, y| Link::new(x, y) != failed, ttl);
                prop_assert!(path.is_some(), "{a}->{b} unroutable with {failed} down");
                let path = path.unwrap();
                prop_assert_eq!(*path.last().unwrap(), b);
            }
        }
    }

    /// Without failures, the planned route between any two nodes has exactly the
    /// shortest-path length.
    #[test]
    fn primary_routes_are_shortest_paths(
        n_switches in 4usize..14,
        extra_links in 0usize..6,
        seed in 0u64..1000,
    ) {
        let net = builders::random_2connected(n_switches, extra_links, 0, seed);
        let plan = FlowPlanner::new(1).plan(&net.graph);
        let ttl = 4 * net.graph.node_count();
        for a in net.graph.nodes() {
            for b in net.graph.nodes() {
                if a == b {
                    continue;
                }
                let path = plan.route(a, b, |_, _| true, ttl).expect("connected");
                let expected = sdn_topology::paths::distance(&net.graph, a, b).unwrap() as usize;
                prop_assert_eq!(path.len() - 1, expected, "{}->{}", a, b);
            }
        }
    }

    /// The self-stabilizing channel never duplicates or reorders messages, no matter
    /// which prefix of transmissions is lost.
    #[test]
    fn channel_is_exactly_once_in_order(loss_pattern in proptest::collection::vec(any::<bool>(), 40..200)) {
        let mut tx: Sender<u32> = Sender::new();
        let mut rx: Receiver<u32> = Receiver::new();
        for i in 0..20u32 {
            tx.push(i);
        }
        let mut delivered = Vec::new();
        for &lose in &loss_pattern {
            if let Some(frame) = tx.frame_to_send() {
                if lose {
                    continue; // the medium dropped the data frame
                }
                let (msg, ack) = rx.on_frame(frame);
                if let Some(m) = msg {
                    delivered.push(m);
                }
                tx.on_ack(ack);
            }
        }
        // In-order, exactly-once prefix of the pushed sequence.
        let expected: Vec<u32> = (0..delivered.len() as u32).collect();
        prop_assert_eq!(delivered, expected);
    }

    /// The bounded rule table and manager set never exceed their capacities, whatever
    /// sequence of insertions is applied.
    #[test]
    fn switch_memory_bounds_hold(
        capacity in 1usize..32,
        inserts in proptest::collection::vec((0u32..8, 0u32..16, 0u32..4, 0u32..8), 1..200),
    ) {
        let mut table = RuleTable::new(capacity);
        let mut managers = ManagerSet::new(capacity);
        for (cid, dst, prt, fwd) in inserts {
            table.insert(Rule {
                cid: NodeId::new(cid),
                sid: NodeId::new(100),
                src: None,
                dst: NodeId::new(dst),
                prt: prt as u8,
                fwd: NodeId::new(fwd),
                tag: Tag::new(cid, 1),
            });
            managers.add(NodeId::new(cid));
            prop_assert!(table.len() <= capacity);
            prop_assert!(managers.len() <= capacity);
        }
    }

    /// Generated ISP-style topologies always match the requested size and diameter and
    /// stay 2-edge-connected — the invariants Table 8 depends on.
    #[test]
    fn isp_generator_invariants(diameter in 2u32..7, extra in 0usize..20) {
        let n_switches = 2 * diameter as usize + extra;
        let net = builders::isp_like(n_switches, diameter, 2);
        prop_assert_eq!(net.switch_count(), n_switches);
        prop_assert_eq!(sdn_topology::paths::diameter(&net.switch_graph), diameter);
        prop_assert!(sdn_topology::connectivity::supports_kappa(&net.graph, 1));
    }
}
