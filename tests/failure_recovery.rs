//! Integration: recovery from the benign failures of the paper's Figures 10–14 —
//! controller fail-stop, switch fail-stop, single and multiple link failures — plus the
//! node-addition cases of Lemma 8.

use renaissance::{ControllerConfig, FaultInjector, HarnessConfig, SdnNetwork};
use sdn_netsim::SimDuration;
use sdn_topology::builders;

const CHECK: SimDuration = SimDuration::from_millis(200);
const TIMEOUT: SimDuration = SimDuration::from_secs(600);

fn bootstrapped_b4(seed: u64) -> SdnNetwork {
    let topology = builders::b4(3);
    let mut sdn = SdnNetwork::new(
        topology,
        ControllerConfig::for_network(3, 12),
        HarnessConfig::default()
            .with_task_delay(SimDuration::from_millis(200))
            .with_seed(seed),
    );
    sdn.run_until_legitimate(CHECK, TIMEOUT).expect("bootstrap");
    sdn
}

#[test]
fn controller_fail_stop_is_cleaned_up_everywhere() {
    let mut sdn = bootstrapped_b4(11);
    let victim = sdn.controller_ids()[1];
    sdn.fail_controller(victim);
    let recovery = sdn.run_until_legitimate(CHECK, TIMEOUT).expect("recovery");
    assert!(recovery > SimDuration::ZERO);
    for switch_id in sdn.switch_ids() {
        let switch = sdn.switch(switch_id).expect("switch");
        assert!(
            !switch.managers().contains(victim),
            "stale manager at {switch_id}"
        );
        assert!(
            switch.rules().rules_of(victim).is_empty(),
            "stale rules at {switch_id}"
        );
    }
}

#[test]
fn all_but_one_controller_can_fail() {
    let mut sdn = bootstrapped_b4(13);
    let controllers = sdn.controller_ids();
    for &victim in &controllers[1..] {
        sdn.fail_controller(victim);
    }
    let recovery = sdn.run_until_legitimate(CHECK, TIMEOUT).expect("recovery");
    assert!(recovery > SimDuration::ZERO);
    // Every switch is now managed by exactly the surviving controller.
    for switch_id in sdn.switch_ids() {
        let switch = sdn.switch(switch_id).expect("switch");
        assert_eq!(switch.managers().to_sorted_vec(), vec![controllers[0]]);
    }
}

#[test]
fn switch_fail_stop_recovers() {
    let mut sdn = bootstrapped_b4(17);
    let mut injector = FaultInjector::new(17);
    let victim = injector.random_switch(&sdn);
    sdn.fail_switch(victim);
    let recovery = sdn.run_until_legitimate(CHECK, TIMEOUT);
    assert!(recovery.is_some(), "switch failure must be recoverable");
}

#[test]
fn single_and_multiple_link_failures_recover() {
    for count in [1usize, 2, 3] {
        let mut sdn = bootstrapped_b4(19 + count as u64);
        let mut injector = FaultInjector::new(19 + count as u64);
        let links = injector.random_safe_links(&sdn, count);
        assert_eq!(links.len(), count);
        for (a, b) in links {
            sdn.remove_link(a, b);
        }
        let recovery = sdn.run_until_legitimate(CHECK, TIMEOUT);
        assert!(
            recovery.is_some(),
            "{count} link failures must be recoverable"
        );
    }
}

#[test]
fn temporary_link_failure_and_restoration() {
    let mut sdn = bootstrapped_b4(23);
    let mut injector = FaultInjector::new(23);
    let (a, b) = injector.random_safe_links(&sdn, 1)[0];
    sdn.fail_link(a, b);
    sdn.run_until_legitimate(CHECK, TIMEOUT)
        .expect("recovery while the link is down");
    sdn.restore_link(a, b);
    sdn.run_until_legitimate(CHECK, TIMEOUT)
        .expect("recovery after the link comes back");
    assert!(sdn.is_legitimate());
}

#[test]
fn link_addition_is_incorporated() {
    let mut sdn = bootstrapped_b4(29);
    // Add a brand new link between two switches that are not yet adjacent.
    let switches = sdn.switch_ids();
    let (mut a, mut b) = (switches[0], switches[1]);
    'search: for &x in &switches {
        for &y in &switches {
            if x != y && !sdn.sim().topology().has_link(x, y) {
                a = x;
                b = y;
                break 'search;
            }
        }
    }
    sdn.add_link(a, b);
    let recovery = sdn
        .run_until_legitimate(CHECK, TIMEOUT)
        .expect("recovery after link addition");
    assert!(recovery > SimDuration::ZERO);
    // Every controller's view now includes the new link.
    for controller in sdn.controller_ids() {
        let observed = sdn.sim().observed_neighbors(controller);
        let discovered = sdn
            .controller(controller)
            .expect("controller")
            .discovered_graph(&observed);
        assert!(
            discovered.has_link(a, b),
            "controller {controller} missed the new link"
        );
    }
}

#[test]
fn failed_controller_can_rejoin_with_fresh_state() {
    let mut sdn = bootstrapped_b4(31);
    let victim = sdn.controller_ids()[2];
    sdn.fail_controller(victim);
    sdn.run_until_legitimate(CHECK, TIMEOUT)
        .expect("recovery after failure");
    // The controller comes back empty (Lemma 8: new nodes start with empty memory).
    sdn.revive_controller(victim);
    let recovery = sdn
        .run_until_legitimate(CHECK, TIMEOUT)
        .expect("recovery after rejoin");
    assert!(recovery > SimDuration::ZERO);
    for switch_id in sdn.switch_ids() {
        assert!(
            sdn.switch(switch_id)
                .expect("switch")
                .managers()
                .contains(victim),
            "rejoined controller must manage switch {switch_id} again"
        );
    }
}
