//! Integration: in-band bootstrap on the paper's evaluation networks (Figure 5 scenario)
//! and the invariants a legitimate state must satisfy (Definition 1).

use renaissance::{ControllerConfig, HarnessConfig, SdnNetwork};
use sdn_netsim::SimDuration;
use sdn_topology::{builders, paths};

fn bootstrap(name: &str, controllers: usize) -> (SdnNetwork, SimDuration) {
    let topology = builders::by_name(name, controllers);
    let switches = topology.switch_count();
    let mut sdn = SdnNetwork::new(
        topology,
        ControllerConfig::for_network(controllers, switches),
        HarnessConfig::default()
            .with_task_delay(SimDuration::from_millis(200))
            .with_seed(1),
    );
    let elapsed = sdn
        .run_until_legitimate(SimDuration::from_millis(200), SimDuration::from_secs(600))
        .unwrap_or_else(|| panic!("{name} must bootstrap"));
    (sdn, elapsed)
}

#[test]
fn b4_bootstraps_and_every_switch_is_fully_managed() {
    let (sdn, elapsed) = bootstrap("B4", 3);
    assert!(elapsed > SimDuration::ZERO);
    for switch_id in sdn.switch_ids() {
        let switch = sdn.switch(switch_id).expect("switch");
        assert_eq!(
            switch.managers().to_sorted_vec(),
            sdn.controller_ids(),
            "switch {switch_id} must be managed by every controller"
        );
        assert!(
            !switch.rules().is_empty(),
            "switch {switch_id} must hold rules"
        );
    }
}

#[test]
fn clos_bootstrap_installs_bidirectional_inband_paths() {
    let (sdn, _) = bootstrap("Clos", 3);
    let operational = sdn.sim().operational_graph();
    for controller in sdn.controller_ids() {
        for node in operational.nodes() {
            if node == controller {
                continue;
            }
            let forward =
                renaissance::legitimacy::route_in_band(&sdn, operational, controller, node);
            let back = renaissance::legitimacy::route_in_band(&sdn, operational, node, controller);
            assert!(forward.is_some(), "no path {controller} -> {node}");
            assert!(back.is_some(), "no path {node} -> {controller}");
        }
    }
}

#[test]
fn bootstrap_time_grows_with_network_diameter() {
    // The O(D) shape of Lemma 5 / Figure 5: larger-diameter networks take longer.
    let (_, b4) = bootstrap("B4", 3);
    let (_, telstra) = bootstrap("Telstra", 3);
    assert!(
        telstra >= b4,
        "Telstra (diameter 8) should take at least as long as B4 (diameter 5): {telstra} vs {b4}"
    );
}

#[test]
fn controller_knowledge_matches_reality_after_bootstrap() {
    let (sdn, _) = bootstrap("Clos", 2);
    let operational = sdn.sim().operational_graph();
    for controller in sdn.controller_ids() {
        let observed = sdn.sim().observed_neighbors(controller);
        let discovered = sdn
            .controller(controller)
            .expect("controller")
            .discovered_graph(&observed);
        assert_eq!(discovered.node_count(), operational.node_count());
        assert_eq!(discovered.link_count(), operational.link_count());
    }
}

#[test]
fn switch_memory_stays_within_lemma1_bound() {
    let (sdn, _) = bootstrap("B4", 3);
    for switch_id in sdn.switch_ids() {
        let switch = sdn.switch(switch_id).expect("switch");
        assert!(
            switch.rules().len() <= switch.config().max_rules,
            "switch {switch_id} exceeded maxRules"
        );
        assert!(switch.managers().len() <= switch.config().max_managers);
        assert_eq!(
            switch.rules().evictions(),
            0,
            "no evictions during a legal execution"
        );
    }
}

#[test]
fn table8_diameters_match_the_paper() {
    for (name, switches, diameter) in [
        ("B4", 12, 5u32),
        ("Clos", 20, 4),
        ("Telstra", 57, 8),
        ("AT&T", 172, 10),
        ("EBONE", 208, 11),
    ] {
        let topology = builders::by_name(name, 3);
        assert_eq!(topology.switch_count(), switches, "{name}");
        assert_eq!(paths::diameter(&topology.switch_graph), diameter, "{name}");
    }
}
