//! Integration tests of the declarative scenario API:
//!
//! * a seeded regression test asserting that the migrated Figure 10 experiment
//!   (controller fail-stop recovery) produces *identical* results through the
//!   `ScenarioRunner` as through direct `SdnNetwork` escape-hatch calls,
//! * the acceptance check that a composite scenario — link failure plus a concurrent
//!   controller crash plus an iperf workload — stays expressible in a handful of
//!   declarative lines.

use renaissance::scenario::{
    ControlPlane, ControllerSelector, Endpoints, FaultEvent, LinkSelector, MetricKey, Probe,
    Scenario,
};
use renaissance::{ControllerConfig, HarnessConfig, SdnNetwork};
use sdn_netsim::SimDuration;
use sdn_topology::builders;

const CHECK: SimDuration = SimDuration::from_millis(250);
const TIMEOUT: SimDuration = SimDuration::from_secs(1_200);

/// The migrated Figure 10 experiment (recovery after one controller fail-stop) must be
/// bit-identical between the scenario runner and the old-style direct harness driving,
/// seed for seed. This pins the runner's semantics: same legitimacy-check cadence, same
/// simulator event stream, same measurement resolution.
#[test]
fn fig10_controller_failure_scenario_matches_direct_harness_calls() {
    for seed in [911u64, 912, 913] {
        // New API: declarative scenario.
        let report = Scenario::builder("fig10-regression")
            .network("B4")
            .controllers(3)
            .task_delay(SimDuration::from_millis(200))
            .check_every(CHECK)
            .timeout(TIMEOUT)
            .seeds_from(seed)
            .fault_at(
                SimDuration::ZERO,
                FaultEvent::FailController(ControllerSelector::Index(1)),
            )
            .run();
        let run = &report.runs[0];

        // Old API: the SdnNetwork escape hatch, driven by hand.
        let topology = builders::by_name("B4", 3);
        let mut direct = SdnNetwork::new(
            topology,
            ControllerConfig::for_network(3, 12),
            HarnessConfig::default()
                .with_task_delay(SimDuration::from_millis(200))
                .with_seed(seed),
        );
        let bootstrap = direct
            .run_until_legitimate(CHECK, TIMEOUT)
            .expect("direct bootstrap");
        let victim = direct.controller_ids()[1];
        direct.fail_controller(victim);
        let recovery = direct
            .run_until_legitimate(CHECK, TIMEOUT)
            .expect("direct recovery");

        assert_eq!(
            run.bootstrap_s,
            Some(bootstrap.as_secs_f64()),
            "seed {seed}: bootstrap time diverged"
        );
        assert_eq!(
            run.recoveries[0].recovered_in_s,
            Some(recovery.as_secs_f64()),
            "seed {seed}: recovery time diverged"
        );
        assert_eq!(
            run.injected[0].description,
            format!("fail-stop controller {victim}"),
            "seed {seed}: different victim"
        );
        // Not just the timings — the end state matches too.
        assert_eq!(run.total_rules, direct.total_rules(), "seed {seed}");
        assert_eq!(
            run.messages_sent,
            direct.metrics().total_sent(),
            "seed {seed}"
        );
        assert!(run.final_legitimate);
    }
}

/// Acceptance: a composite scenario — concurrent link failure + controller crash with
/// an iperf workload running across the faults — in a dozen declarative lines.
#[test]
fn composite_scenario_is_a_few_declarative_lines() {
    let report = Scenario::builder("composite")
        .network("B4")
        .task_delay(SimDuration::from_millis(200))
        .workload(|| Box::new(sdn_traffic::IperfWorkload::farthest(12)))
        .fault_at(
            SimDuration::from_secs(5),
            FaultEvent::RemoveLink(LinkSelector::RandomSafe { count: 1 }),
        )
        .fault_at(
            SimDuration::from_secs(5),
            FaultEvent::FailController(ControllerSelector::Random { count: 1 }),
        )
        .probe(Probe::legitimacy())
        .runs(2)
        .run();

    assert_eq!(report.runs.len(), 2);
    assert!(report.all_converged(), "both faults recover in every run");
    for run in &report.runs {
        // Both faults fired as one batch at t=5.
        assert_eq!(run.injected.len(), 2);
        assert_eq!(run.recoveries.len(), 1);
        // The workload observed all 12 seconds across the failure.
        let iperf = run.workload("iperf").expect("iperf report");
        let throughput = iperf.series("throughput_mbps").expect("series");
        assert_eq!(throughput.len(), 12);
        assert!(throughput.iter().all(|&t| t >= 0.0));
        // The legitimacy probe observed a legitimate state again after the fault
        // batch (the instantaneous predicate may dip mid-round afterwards).
        let legitimacy = run.probe(&MetricKey::LEGITIMACY).unwrap();
        assert!(legitimacy
            .times_s
            .iter()
            .zip(&legitimacy.values)
            .any(|(&t, &v)| t > 5.0 && v == 1.0));
    }
    // Different seeds may pick different victims, but both runs recorded them.
    assert!(report.recovery_digest().len() == 2);
}

/// The paper's temporary link-failure experiment, plus revival of the crashed
/// controller — exercising the `*LastFailed*` targets end to end.
#[test]
fn flapping_link_and_controller_revival_scenario() {
    let report = Scenario::builder("flap-and-revive")
        .network("B4")
        .task_delay(SimDuration::from_millis(200))
        .check_every(SimDuration::from_millis(200))
        .timeout(SimDuration::from_secs(600))
        .fault_at(
            SimDuration::ZERO,
            FaultEvent::FailController(ControllerSelector::Random { count: 1 }),
        )
        .fault_at(
            SimDuration::from_secs(60),
            FaultEvent::ReviveLastFailedController,
        )
        .fault_at(
            SimDuration::from_secs(120),
            FaultEvent::FailLink(LinkSelector::RandomSafe { count: 1 }),
        )
        .fault_at(
            SimDuration::from_secs(180),
            FaultEvent::RestoreLastFailedLinks,
        )
        .run();
    let run = &report.runs[0];
    assert_eq!(run.recoveries.len(), 4);
    assert!(
        run.recoveries.iter().all(|r| r.recovered_in_s.is_some()),
        "every batch recovers: {:?}",
        run.recoveries
    );
    let descriptions: Vec<_> = run
        .injected
        .iter()
        .map(|f| f.description.as_str())
        .collect();
    assert!(descriptions[0].starts_with("fail-stop controller"));
    assert!(descriptions[1].starts_with("revive controller"));
    assert!(descriptions[2].starts_with("fail link"));
    assert!(descriptions[3].starts_with("restore link"));
}

/// Frozen-control-plane scenarios leave the simulator clock untouched after bootstrap
/// (Figure 16's "without recovery" mode).
#[test]
fn frozen_mode_keeps_the_clock_still() {
    let report = Scenario::builder("frozen")
        .network("B4")
        .task_delay(SimDuration::from_millis(200))
        .control_plane(ControlPlane::Frozen)
        .workload(|| Box::new(sdn_traffic::IperfWorkload::farthest(8)))
        .fault_at(
            SimDuration::from_secs(3),
            FaultEvent::RemoveLink(LinkSelector::MidPath(Endpoints::FarthestSwitches)),
        )
        .run();
    let run = &report.runs[0];
    assert_eq!(run.sim_end_s, run.bootstrap_s.unwrap());
    assert!(run.recoveries.is_empty());
    let iperf = run.workload("iperf").expect("iperf report");
    assert_eq!(iperf.series("throughput_mbps").unwrap().len(), 8);
}
