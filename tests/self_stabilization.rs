//! Integration: self-stabilization from arbitrary corrupted states (Theorem 2) and the
//! behaviour of the algorithm variants (memory-adaptive vs Section 8.1 non-adaptive,
//! three-tag evaluation variant).

use renaissance::{
    ControllerConfig, CorruptionPlan, FaultInjector, HarnessConfig, SdnNetwork, Variant,
};
use sdn_netsim::SimDuration;
use sdn_topology::builders;

const CHECK: SimDuration = SimDuration::from_millis(200);
const TIMEOUT: SimDuration = SimDuration::from_secs(900);

fn build(adaptive: bool, seed: u64) -> SdnNetwork {
    let topology = builders::clos(3);
    let mut config = ControllerConfig::for_network(3, 20);
    if !adaptive {
        config = config.non_adaptive();
    }
    SdnNetwork::new(
        topology,
        config,
        HarnessConfig::default()
            .with_task_delay(SimDuration::from_millis(200))
            .with_seed(seed),
    )
}

#[test]
fn recovers_from_heavy_corruption_with_the_memory_adaptive_algorithm() {
    let mut sdn = build(true, 41);
    sdn.run_until_legitimate(CHECK, TIMEOUT).expect("bootstrap");
    let mut injector = FaultInjector::new(41);
    let mutations = injector.corrupt(&mut sdn, CorruptionPlan::heavy());
    assert!(mutations > 0);
    assert!(!sdn.is_legitimate());
    let recovery = sdn
        .run_until_legitimate(CHECK, TIMEOUT)
        .expect("Theorem 2 recovery");
    assert!(recovery > SimDuration::ZERO);
    // Memory adaptiveness: after recovery no switch stores state of bogus controllers.
    for switch_id in sdn.switch_ids() {
        let switch = sdn.switch(switch_id).expect("switch");
        for owner in switch.rules().controllers_with_rules() {
            assert!(
                sdn.controller_ids().contains(&owner),
                "bogus rule owner {owner}"
            );
        }
    }
}

#[test]
fn recovers_from_light_corruption_repeatedly() {
    let mut sdn = build(true, 43);
    sdn.run_until_legitimate(CHECK, TIMEOUT).expect("bootstrap");
    let mut injector = FaultInjector::new(43);
    for round in 0..3 {
        injector.corrupt(&mut sdn, CorruptionPlan::light());
        sdn.run_until_legitimate(CHECK, TIMEOUT)
            .unwrap_or_else(|| panic!("recovery round {round}"));
    }
    assert!(sdn.is_legitimate());
}

#[test]
fn non_adaptive_variant_also_bootstraps_and_survives_controller_failure() {
    let mut sdn = build(false, 47);
    assert_eq!(sdn.controller_config().variant, Variant::NonAdaptive);
    sdn.run_until_legitimate(CHECK, TIMEOUT).expect("bootstrap");
    // The non-adaptive variant never issues deletions...
    for controller in sdn.controller_ids() {
        let stats = sdn.controller(controller).expect("controller").stats();
        assert_eq!(stats.manager_deletions_requested, 0);
        assert_eq!(stats.rule_deletions_requested, 0);
    }
    // ... so after a controller fail-stop its rules linger in the switches (the cost the
    // paper describes in Section 8.1: memory is not adaptive), while the network keeps
    // every live controller connected to every switch.
    let victim = sdn.controller_ids()[2];
    sdn.fail_controller(victim);
    sdn.run_for(SimDuration::from_secs(30));
    let lingering: usize = sdn
        .switch_ids()
        .iter()
        .filter_map(|&s| sdn.switch(s))
        .map(|sw| sw.rules().rules_of(victim).len())
        .sum();
    assert!(
        lingering > 0,
        "non-adaptive variant must not clean up stale rules"
    );
    // Live controllers still reach every switch in-band.
    let operational = sdn.sim().operational_graph();
    for controller in sdn.live_controller_ids() {
        for switch in sdn.live_switch_ids() {
            assert!(
                renaissance::legitimacy::route_in_band(&sdn, operational, controller, switch)
                    .is_some(),
                "no path {controller} -> {switch} under the non-adaptive variant"
            );
        }
    }
}

#[test]
fn memory_adaptive_variant_uses_less_memory_after_controller_failures() {
    // The Section 8.1 trade-off: after a controller failure the adaptive variant purges
    // its rules while the non-adaptive variant keeps paying for them.
    let mut adaptive = build(true, 53);
    let mut non_adaptive = build(false, 53);
    adaptive
        .run_until_legitimate(CHECK, TIMEOUT)
        .expect("bootstrap adaptive");
    non_adaptive
        .run_until_legitimate(CHECK, TIMEOUT)
        .expect("bootstrap non-adaptive");
    let victim_a = adaptive.controller_ids()[2];
    let victim_n = non_adaptive.controller_ids()[2];
    adaptive.fail_controller(victim_a);
    non_adaptive.fail_controller(victim_n);
    adaptive
        .run_until_legitimate(CHECK, TIMEOUT)
        .expect("adaptive recovery");
    non_adaptive.run_for(SimDuration::from_secs(30));
    assert!(
        adaptive.total_rules() < non_adaptive.total_rules(),
        "adaptive {} rules vs non-adaptive {} rules",
        adaptive.total_rules(),
        non_adaptive.total_rules()
    );
}

#[test]
fn corrupted_controller_tags_do_not_prevent_progress() {
    let mut sdn = build(true, 59);
    sdn.run_until_legitimate(CHECK, TIMEOUT).expect("bootstrap");
    // Corrupt only the controllers (tags + replyDB), leaving switches intact.
    let plan = CorruptionPlan {
        garbage_rules_per_switch: 0,
        bogus_managers_per_switch: 0,
        clear_some_switches: false,
        bogus_replies_per_controller: 8,
        corrupt_controller_tags: true,
    };
    let mut injector = FaultInjector::new(59);
    injector.corrupt(&mut sdn, plan);
    let recovery = sdn.run_until_legitimate(CHECK, TIMEOUT).expect("recovery");
    assert!(recovery > SimDuration::ZERO);
}
