//! Workspace facade crate: re-exports every crate of the Renaissance reproduction so
//! that the repository-level examples and integration tests can use a single import
//! root. Library users should depend on the individual crates (`renaissance`,
//! `sdn-topology`, ...) directly.
//!
//! Start with [`renaissance::scenario`]: the declarative `ScenarioBuilder` is the
//! front door for composing experiments (topology + fault schedule + workloads +
//! probes) over the simulated control plane.

pub use renaissance;
pub use sdn_channel;
pub use sdn_metrics;
pub use sdn_netsim;
pub use sdn_serve;
pub use sdn_switch;
pub use sdn_tags;
pub use sdn_topology;
pub use sdn_traffic;
